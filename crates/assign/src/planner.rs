//! Task Planning Assignment (TPA, Algorithm 4).
//!
//! The planner wires the whole §IV pipeline together for one planning
//! instant: reachable tasks → candidate sequences → worker dependency graph →
//! graph partition and recursive tree construction → exact or TVF-guided
//! depth-first search, per connected component.
//!
//! ## Partitioned, multi-core planning
//!
//! Each root subtree of the cluster tree is an independent subproblem (its
//! workers and reachable tasks are disjoint from every other subtree's), so
//! the planner splits the instant into [`Partition`]s and fans them out to a
//! scoped thread pool ([`crate::pool`]), sized by [`AssignConfig::threads`]
//! (or the `DATAWA_THREADS` environment variable). Every partition is
//! searched against a partition-local available-task set and results merge
//! in partition-index order, so the assignment is bitwise identical for
//! every thread count — including the inline single-threaded path, which
//! spawns nothing.
//!
//! State features fed to the TVF (and recorded in training samples) are
//! *subproblem-local*: `remaining_tasks` counts the partition's own open
//! tasks, not the whole instant's, so training and inference see the same
//! distribution regardless of how many partitions the instant split into.

use crate::cache::{IncrementalContext, PlanCache};
use crate::config::AssignConfig;
use crate::partition::{split_cluster_tree, Partition};
use crate::pool;
use crate::reachable::{build_worker_dependency_graph, reachable_tasks};
use crate::search::{DfSearch, SearchSample};
use crate::sequences::{generate_sequences_into, GenScratch, SequenceSet};
use crate::tvf::{TaskValueFunction, TvfInference};
use datawa_core::{Assignment, TaskId, TaskSequence, TaskStore, Timestamp, WorkerId, WorkerStore};
use datawa_graph::{ClusterTree, TreeNode, UnGraph};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Diagnostics of one planning call.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlanningReport {
    /// Wall-clock planning time, in seconds.
    pub elapsed_seconds: f64,
    /// Number of workers that took part in planning.
    pub workers_considered: usize,
    /// Number of candidate tasks (current + predicted) that took part.
    pub tasks_considered: usize,
    /// Number of cluster-tree nodes built across all components.
    pub tree_nodes: usize,
    /// Average reachable tasks per worker.
    pub mean_reachable: f64,
    /// Number of independent planning partitions (cluster-tree root
    /// subtrees) this instant split into. Zero for the greedy baseline,
    /// which has no dependency graph.
    pub partitions: usize,
    /// Workers in the largest partition — the span of the critical path a
    /// thread pool cannot shorten further.
    pub max_partition_workers: usize,
    /// Threads the partition pool actually occupied
    /// (`min(configured, partitions)`, at least 1).
    pub threads_used: usize,
    /// Search nodes expanded across all partitions: budgeted depth-first
    /// expansions for the exact search, one per planned worker for the
    /// guided search (which visits each worker exactly once), zero for the
    /// greedy baseline.
    pub nodes_expanded: usize,
    /// Partitions whose plan was reused this instant instead of searched:
    /// verified plan-cache hits plus workers with empty reachable sets
    /// (each a trivial singleton partition assigning nothing). Zero on the
    /// full (non-incremental) path.
    pub partitions_reused: usize,
    /// Partitions actually searched this instant. On the full path this is
    /// every partition.
    pub partitions_recomputed: usize,
}

/// How the planner searches each cluster tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SearchMode {
    /// Greedy baseline (no dependency separation, no search).
    Greedy,
    /// Exact DFSearch (Algorithm 1).
    Exact,
    /// TVF-guided search (Algorithm 2); requires a trained TVF.
    Guided,
}

/// The TPA planner.
///
/// The planner owns reusable scratch storage for the hot replan path (the
/// per-worker sequence map, rebuilt at every planning instant), so callers
/// that keep one planner alive across instants — the adaptive runner does —
/// pay the map's allocation once instead of per call. Planning therefore
/// takes `&mut self`.
pub struct Planner {
    /// Shared configuration.
    pub config: AssignConfig,
    /// Search mode.
    pub mode: SearchMode,
    /// Inference snapshot of the trained task value function (required for
    /// [`SearchMode::Guided`]; set through [`Planner::with_tvf`]).
    tvf: Option<TvfInference>,
    /// Scratch: candidate sequences per worker, reused across planning calls
    /// (cleared, not reallocated).
    scratch_sequences: HashMap<WorkerId, SequenceSet>,
    /// Scratch: sequence-generation buffers, reused across workers and
    /// instants by every search mode (greedy included).
    gen_scratch: GenScratch,
    /// Incremental replanning state: verified per-worker reachable sets and
    /// fingerprinted per-partition plans (see [`crate::cache`]).
    cache: PlanCache,
}

impl Planner {
    /// Creates a planner with the given mode.
    pub fn new(config: AssignConfig, mode: SearchMode) -> Planner {
        Planner {
            config,
            mode,
            tvf: None,
            scratch_sequences: HashMap::new(),
            gen_scratch: GenScratch::default(),
            cache: PlanCache::default(),
        }
    }

    /// Attaches a trained TVF (used by [`SearchMode::Guided`]); the planner
    /// keeps a thread-safe inference snapshot of its weights.
    pub fn with_tvf(mut self, tvf: TaskValueFunction) -> Planner {
        self.tvf = Some(tvf.inference());
        self
    }

    /// Number of partition plans currently held by the incremental plan
    /// cache (diagnostic; zero until an incremental planning call stores
    /// one).
    pub fn cached_partitions(&self) -> usize {
        self.cache.cached_partitions()
    }

    /// Plans task sequences for `worker_ids` over `candidate_tasks` at `now`
    /// (Algorithm 4), returning the assignment and planning diagnostics.
    /// Always the full (non-incremental) path; streaming drivers that can
    /// vouch for the caching preconditions call
    /// [`Planner::plan_incremental`] instead.
    pub fn plan(
        &mut self,
        worker_ids: &[WorkerId],
        candidate_tasks: &[TaskId],
        workers: &WorkerStore,
        tasks: &TaskStore,
        now: Timestamp,
    ) -> (Assignment, PlanningReport) {
        self.plan_incremental(worker_ids, candidate_tasks, workers, tasks, now, None)
    }

    /// [`Planner::plan`] with an optional [`IncrementalContext`]: when the
    /// caller supplies one (vouching that every candidate task is real and
    /// mapping planning ids back to stable real ids), the exact partitioned
    /// search may reuse cached per-partition plans from earlier instants —
    /// bitwise identical output, work proportional to what changed. The
    /// greedy and TVF-guided modes ignore the context (greedy has no
    /// partitions; the guided search's TVF features depend on `now`, which
    /// content fingerprints cannot capture), as does
    /// [`IncrementalMode::Off`](crate::config::IncrementalMode).
    pub fn plan_incremental(
        &mut self,
        worker_ids: &[WorkerId],
        candidate_tasks: &[TaskId],
        workers: &WorkerStore,
        tasks: &TaskStore,
        now: Timestamp,
        ctx: Option<&IncrementalContext<'_>>,
    ) -> (Assignment, PlanningReport) {
        match self.mode {
            SearchMode::Greedy => {
                self.plan_greedy(worker_ids, candidate_tasks, workers, tasks, now)
            }
            SearchMode::Exact => {
                self.plan_partitioned(worker_ids, candidate_tasks, workers, tasks, now, None, ctx)
            }
            SearchMode::Guided => {
                // Detach the snapshot for the duration of the call so the
                // partition pool can borrow it alongside the scratch buffers.
                let tvf = self
                    .tvf
                    .take()
                    // datawa-lint: allow(unwrap-in-hot-path) -- mode invariant: Guided is only selected by constructors that install a TVF
                    .expect("SearchMode::Guided requires a trained TVF");
                let out = self.plan_partitioned(
                    worker_ids,
                    candidate_tasks,
                    workers,
                    tasks,
                    now,
                    Some(&tvf),
                    None,
                );
                self.tvf = Some(tvf);
                out
            }
        }
    }

    /// Plans with the TVF-guided search using a caller-provided inference
    /// snapshot (the DATA-WA policy's entry point: the adaptive runner owns
    /// the snapshot and must outlive many planning calls).
    pub fn plan_guided(
        &mut self,
        worker_ids: &[WorkerId],
        candidate_tasks: &[TaskId],
        workers: &WorkerStore,
        tasks: &TaskStore,
        now: Timestamp,
        tvf: &TvfInference,
    ) -> (Assignment, PlanningReport) {
        self.plan_partitioned(
            worker_ids,
            candidate_tasks,
            workers,
            tasks,
            now,
            Some(tvf),
            None,
        )
    }

    /// The greedy baseline: no dependency graph, no partitions, one ordered
    /// pass over the workers.
    fn plan_greedy(
        &mut self,
        worker_ids: &[WorkerId],
        candidate_tasks: &[TaskId],
        workers: &WorkerStore,
        tasks: &TaskStore,
        now: Timestamp,
    ) -> (Assignment, PlanningReport) {
        // datawa-lint: allow(wall-clock-in-hot-path) -- feeds the replan-latency histogram only; never read by planning logic
        #[allow(clippy::disallowed_methods)]
        let start = Instant::now();
        let mut report = PlanningReport {
            workers_considered: worker_ids.len(),
            tasks_considered: candidate_tasks.len(),
            threads_used: 1,
            ..PlanningReport::default()
        };
        if worker_ids.is_empty() || candidate_tasks.is_empty() {
            report.elapsed_seconds = start.elapsed().as_secs_f64();
            return (Assignment::new(), report);
        }
        let config = self.config;
        let reachable = reachable_tasks(worker_ids, candidate_tasks, workers, tasks, &config, now);
        report.mean_reachable = reachable.mean_reachable();
        let sequences = Self::fill_sequences(
            &mut self.scratch_sequences,
            &mut self.gen_scratch,
            worker_ids,
            workers,
            tasks,
            &reachable,
            &config,
            now,
        );
        let search = DfSearch::new(workers, tasks, &config, now, sequences, &reachable);
        let mut available: HashSet<TaskId> = HashSet::with_capacity(candidate_tasks.len());
        available.extend(candidate_tasks.iter().copied());
        let assignment = search.greedy(worker_ids, &mut available);
        report.elapsed_seconds = start.elapsed().as_secs_f64();
        (assignment, report)
    }

    /// The partitioned search path shared by [`SearchMode::Exact`] and the
    /// TVF-guided modes: build the dependency graph and cluster tree once,
    /// split the instant into independent partitions, search each partition
    /// against its own available set on the pool, and merge in partition
    /// order.
    #[allow(clippy::too_many_arguments)]
    fn plan_partitioned(
        &mut self,
        worker_ids: &[WorkerId],
        candidate_tasks: &[TaskId],
        workers: &WorkerStore,
        tasks: &TaskStore,
        now: Timestamp,
        tvf: Option<&TvfInference>,
        ctx: Option<&IncrementalContext<'_>>,
    ) -> (Assignment, PlanningReport) {
        // datawa-lint: allow(wall-clock-in-hot-path) -- feeds the replan-latency histogram only; never read by planning logic
        #[allow(clippy::disallowed_methods)]
        let start = Instant::now();
        let mut report = PlanningReport {
            workers_considered: worker_ids.len(),
            tasks_considered: candidate_tasks.len(),
            threads_used: 1,
            ..PlanningReport::default()
        };
        if worker_ids.is_empty() || candidate_tasks.is_empty() {
            report.elapsed_seconds = start.elapsed().as_secs_f64();
            return (Assignment::new(), report);
        }
        let config = self.config;
        // Incremental route: exact search only (TVF features depend on
        // `now`), with the caller's context and the toggle both agreeing.
        if tvf.is_none() && config.incremental.enabled() {
            if let Some(ctx) = ctx {
                return self.plan_partitioned_incremental(
                    worker_ids,
                    candidate_tasks,
                    workers,
                    tasks,
                    now,
                    ctx,
                    start,
                    report,
                );
            }
        }
        // Lines 2–5: reachable tasks and candidate sequences per worker.
        let reachable = reachable_tasks(worker_ids, candidate_tasks, workers, tasks, &config, now);
        report.mean_reachable = reachable.mean_reachable();
        let sequences = Self::fill_sequences(
            &mut self.scratch_sequences,
            &mut self.gen_scratch,
            worker_ids,
            workers,
            tasks,
            &reachable,
            &config,
            now,
        );
        let search = DfSearch::new(workers, tasks, &config, now, sequences, &reachable);
        // Line 6: worker dependency graph; lines 7–10: per component,
        // partition, build the tree, and search it — one partition (root
        // subtree) per pool task.
        let (graph, mapping) = build_worker_dependency_graph(worker_ids, &reachable);
        let tree = build_tree(&config, &graph);
        report.tree_nodes = tree.len();
        let partitions = split_cluster_tree(&tree, &mapping, &reachable);
        report.partitions = partitions.len();
        report.partitions_recomputed = partitions.len();
        report.max_partition_workers = partitions
            .iter()
            .map(|p| p.worker_ids.len())
            .max()
            .unwrap_or(0);
        let threads = pool::effective_threads(config.threads);
        report.threads_used = threads.min(partitions.len()).max(1);
        let plans = pool::run_indexed(threads, &partitions, |_, p: &Partition| {
            let mut available = p.task_set();
            match tvf {
                None => {
                    search.exact_partition_counted(&tree, &mapping, p.root, &mut available, None)
                }
                Some(tvf) => {
                    let plan =
                        search.guided_partition(&tree, &mapping, p.root, &mut available, tvf);
                    let nodes = plan.len();
                    (plan, nodes)
                }
            }
        });
        let mut assignment = Assignment::new();
        for (plan, nodes) in plans {
            report.nodes_expanded += nodes;
            for (w, seq) in plan {
                assignment.set(w, seq);
            }
        }
        report.elapsed_seconds = start.elapsed().as_secs_f64();
        (assignment, report)
    }

    /// The incremental twin of the exact partitioned path. Reachable sets
    /// are refreshed through the plan cache (per-worker verify-or-rescan),
    /// workers with empty reachable sets are excluded before the dependency
    /// graph is built (each would form a trivial singleton partition
    /// assigning nothing — counted as reused), candidate sequences are
    /// regenerated for every included worker (they are `now`-dependent, so
    /// they are part of the cache-hit criterion rather than cached output),
    /// and only fingerprint-missed partitions are searched. Splicing in
    /// partition-index order keeps the output bitwise identical to the full
    /// path at every thread count.
    #[allow(clippy::too_many_arguments)]
    fn plan_partitioned_incremental(
        &mut self,
        worker_ids: &[WorkerId],
        candidate_tasks: &[TaskId],
        workers: &WorkerStore,
        tasks: &TaskStore,
        now: Timestamp,
        ctx: &IncrementalContext<'_>,
        start: Instant,
        mut report: PlanningReport,
    ) -> (Assignment, PlanningReport) {
        let config = self.config;
        debug_assert_eq!(
            ctx.real_ids.len(),
            candidate_tasks.len(),
            "incremental context must map every candidate task"
        );
        let (reachable, _rescanned) = self.cache.refresh_reachable(
            worker_ids,
            candidate_tasks,
            ctx.real_ids,
            workers,
            tasks,
            &config,
            now,
        );
        report.mean_reachable = reachable.mean_reachable();
        let included: Vec<WorkerId> = worker_ids
            .iter()
            .copied()
            .filter(|&w| !reachable.of(w).is_empty())
            .collect();
        let excluded = worker_ids.len() - included.len();
        if included.is_empty() {
            report.partitions_reused = excluded;
            report.elapsed_seconds = start.elapsed().as_secs_f64();
            return (Assignment::new(), report);
        }
        let sequences = Self::fill_sequences(
            &mut self.scratch_sequences,
            &mut self.gen_scratch,
            &included,
            workers,
            tasks,
            &reachable,
            &config,
            now,
        );
        let search = DfSearch::new(workers, tasks, &config, now, sequences, &reachable);
        let (graph, mapping) = build_worker_dependency_graph(&included, &reachable);
        let tree = build_tree(&config, &graph);
        report.tree_nodes = tree.len();
        let partitions = split_cluster_tree(&tree, &mapping, &reachable);
        report.partitions = partitions.len();
        report.max_partition_workers = partitions
            .iter()
            .map(|p| p.worker_ids.len())
            .max()
            .unwrap_or(0);
        let epoch = ctx.forecast_epoch;
        // Sequential probe pre-pass: hits splice their translated stored
        // plan, misses queue for the pool.
        type Slot = (Vec<(WorkerId, TaskSequence)>, usize);
        let mut slots: Vec<Option<Slot>> = Vec::with_capacity(partitions.len());
        let mut keys: Vec<u64> = Vec::with_capacity(partitions.len());
        let mut misses: Vec<usize> = Vec::new();
        for p in &partitions {
            let (key, hit) = self.cache.probe(p, sequences, ctx.real_ids, workers, epoch);
            keys.push(key);
            match hit {
                Some(plan) => slots.push(Some((plan, 0))),
                None => {
                    misses.push(p.index);
                    slots.push(None);
                }
            }
        }
        let hits = partitions.len() - misses.len();
        report.partitions_reused = excluded + hits;
        report.partitions_recomputed = misses.len();
        let threads = pool::effective_threads(config.threads);
        report.threads_used = threads.min(misses.len()).max(1);
        let miss_parts: Vec<&Partition> = misses.iter().map(|&i| &partitions[i]).collect();
        let computed = pool::run_indexed(threads, &miss_parts, |_, p: &&Partition| {
            let mut available = p.task_set();
            search.exact_partition_counted(&tree, &mapping, p.root, &mut available, None)
        });
        for (&i, plan) in misses.iter().zip(computed) {
            self.cache.store(
                keys[i],
                &partitions[i],
                sequences,
                ctx.real_ids,
                workers,
                epoch,
                &plan.0,
            );
            slots[i] = Some(plan);
        }
        let mut assignment = Assignment::new();
        for slot in slots {
            // datawa-lint: allow(unwrap-in-hot-path) -- run_indexed writes every slot exactly once; a hole means a pool bug, not a data condition
            let (plan, nodes) = slot.expect("every partition resolved");
            report.nodes_expanded += nodes;
            for (w, seq) in plan {
                assignment.set(w, seq);
            }
        }
        report.elapsed_seconds = start.elapsed().as_secs_f64();
        (assignment, report)
    }

    /// Runs the exact search while collecting `(state, action, opt)` samples
    /// for TVF training (the data-gathering phase of §IV-B). Partitions are
    /// searched sequentially (sample order must stay deterministic) against
    /// partition-local available sets, so recorded state features match what
    /// the guided search will later observe.
    pub fn collect_training_samples(
        &mut self,
        worker_ids: &[WorkerId],
        candidate_tasks: &[TaskId],
        workers: &WorkerStore,
        tasks: &TaskStore,
        now: Timestamp,
    ) -> Vec<SearchSample> {
        if worker_ids.is_empty() || candidate_tasks.is_empty() {
            return Vec::new();
        }
        let config = self.config;
        let reachable = reachable_tasks(worker_ids, candidate_tasks, workers, tasks, &config, now);
        let sequences = Self::fill_sequences(
            &mut self.scratch_sequences,
            &mut self.gen_scratch,
            worker_ids,
            workers,
            tasks,
            &reachable,
            &config,
            now,
        );
        let search = DfSearch::new(workers, tasks, &config, now, sequences, &reachable);
        let (graph, mapping) = build_worker_dependency_graph(worker_ids, &reachable);
        let tree = build_tree(&config, &graph);
        let partitions = split_cluster_tree(&tree, &mapping, &reachable);
        let mut samples = Vec::new();
        for p in &partitions {
            let mut available = p.task_set();
            let _ =
                search.exact_partition(&tree, &mapping, p.root, &mut available, Some(&mut samples));
        }
        samples
    }

    /// Rebuilds the per-worker sequence map into the reusable scratch buffer
    /// and returns it as a shared borrow for the search. Generation runs
    /// through the pooled [`GenScratch`] buffers (every search mode, greedy
    /// included), so the per-call allocation cost is amortised away.
    #[allow(clippy::too_many_arguments)]
    fn fill_sequences<'a>(
        scratch: &'a mut HashMap<WorkerId, SequenceSet>,
        gen: &mut GenScratch,
        worker_ids: &[WorkerId],
        workers: &WorkerStore,
        tasks: &TaskStore,
        reachable: &crate::reachable::ReachableSets,
        config: &AssignConfig,
        now: Timestamp,
    ) -> &'a HashMap<WorkerId, SequenceSet> {
        scratch.clear();
        scratch.reserve(worker_ids.len());
        for &w in worker_ids {
            scratch.insert(
                w,
                generate_sequences_into(gen, workers.get(w), reachable.of(w), tasks, config, now),
            );
        }
        scratch
    }
}

/// Builds the cluster tree, honouring the ablation switch: with dependency
/// separation disabled, every connected component becomes a single flat
/// tree node (no search-space reduction).
fn build_tree(config: &AssignConfig, graph: &UnGraph) -> ClusterTree {
    if config.use_dependency_separation {
        ClusterTree::build(graph)
    } else {
        let mut tree = ClusterTree::default();
        for component in graph.connected_components() {
            let index = tree.nodes.len();
            tree.nodes.push(TreeNode {
                members: component,
                children: Vec::new(),
            });
            tree.roots.push(index);
        }
        tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datawa_core::{Location, Task, Worker};

    fn scenario(n_workers: usize, n_tasks: usize) -> (WorkerStore, TaskStore) {
        let mut workers = WorkerStore::new();
        for i in 0..n_workers {
            workers.insert(Worker::new(
                WorkerId(0),
                Location::new(i as f64 * 2.0, 0.0),
                5.0,
                Timestamp(0.0),
                Timestamp(200.0),
            ));
        }
        let mut tasks = TaskStore::new();
        for j in 0..n_tasks {
            tasks.insert(Task::new(
                TaskId(0),
                Location::new(j as f64 * 1.0, 1.0),
                Timestamp(0.0),
                Timestamp(150.0),
            ));
        }
        (workers, tasks)
    }

    #[test]
    fn exact_planner_produces_a_feasible_assignment() {
        let (workers, tasks) = scenario(4, 8);
        // Pin threads = 1: the default (0) defers to DATAWA_THREADS, which
        // the CI matrix sets, and this test asserts on threads_used.
        let mut config = AssignConfig::unit_speed();
        config.threads = 1;
        let mut planner = Planner::new(config, SearchMode::Exact);
        let wids: Vec<WorkerId> = workers.ids().collect();
        let tids: Vec<TaskId> = tasks.ids().collect();
        let (assignment, report) = planner.plan(&wids, &tids, &workers, &tasks, Timestamp(0.0));
        assert!(assignment.assigned_count() > 0);
        assert!(assignment
            .validate(&workers, &tasks, &planner.config.travel, Timestamp(0.0))
            .is_empty());
        assert!(report.elapsed_seconds >= 0.0);
        assert!(report.tree_nodes >= 1);
        assert!(report.partitions >= 1);
        assert!(report.max_partition_workers >= 1);
        assert_eq!(report.threads_used, 1, "threads = 1 plans inline");
        assert_eq!(report.workers_considered, 4);
    }

    #[test]
    fn exact_assigns_at_least_as_many_as_greedy() {
        let (workers, tasks) = scenario(5, 10);
        let wids: Vec<WorkerId> = workers.ids().collect();
        let tids: Vec<TaskId> = tasks.ids().collect();
        let mut exact = Planner::new(AssignConfig::unit_speed(), SearchMode::Exact);
        let mut greedy = Planner::new(AssignConfig::unit_speed(), SearchMode::Greedy);
        let (a_exact, _) = exact.plan(&wids, &tids, &workers, &tasks, Timestamp(0.0));
        let (a_greedy, _) = greedy.plan(&wids, &tids, &workers, &tasks, Timestamp(0.0));
        assert!(a_exact.assigned_count() >= a_greedy.assigned_count());
    }

    #[test]
    fn guided_planner_matches_feasibility_with_a_trained_tvf() {
        let (workers, tasks) = scenario(4, 8);
        let wids: Vec<WorkerId> = workers.ids().collect();
        let tids: Vec<TaskId> = tasks.ids().collect();
        let mut collector = Planner::new(AssignConfig::unit_speed(), SearchMode::Exact);
        let samples =
            collector.collect_training_samples(&wids, &tids, &workers, &tasks, Timestamp(0.0));
        assert!(!samples.is_empty());
        let mut tvf = TaskValueFunction::new(16, 0);
        let tuples: Vec<_> = samples.iter().map(|s| (s.state, s.action, s.opt)).collect();
        tvf.train(&tuples, 60, 16, 0.01, 0);
        let mut guided = Planner::new(AssignConfig::unit_speed(), SearchMode::Guided).with_tvf(tvf);
        let (assignment, _) = guided.plan(&wids, &tids, &workers, &tasks, Timestamp(0.0));
        assert!(assignment
            .validate(&workers, &tasks, &guided.config.travel, Timestamp(0.0))
            .is_empty());
        assert!(assignment.assigned_count() > 0);
    }

    #[test]
    fn disabling_dependency_separation_still_plans_feasibly() {
        let (workers, tasks) = scenario(4, 6);
        let mut config = AssignConfig::unit_speed();
        config.use_dependency_separation = false;
        let mut planner = Planner::new(config, SearchMode::Exact);
        let wids: Vec<WorkerId> = workers.ids().collect();
        let tids: Vec<TaskId> = tasks.ids().collect();
        let (assignment, report) = planner.plan(&wids, &tids, &workers, &tasks, Timestamp(0.0));
        assert!(assignment
            .validate(&workers, &tasks, &config.travel, Timestamp(0.0))
            .is_empty());
        // One flat node per connected component, each its own partition.
        assert!(report.tree_nodes >= 1);
        assert_eq!(report.partitions, report.tree_nodes);
    }

    #[test]
    fn empty_inputs_plan_nothing() {
        let (workers, tasks) = scenario(2, 2);
        let mut planner = Planner::new(AssignConfig::unit_speed(), SearchMode::Exact);
        let (a, r) = planner.plan(&[], &[], &workers, &tasks, Timestamp(0.0));
        assert!(a.is_empty());
        assert_eq!(r.tasks_considered, 0);
        assert!(planner
            .collect_training_samples(&[], &[], &workers, &tasks, Timestamp(0.0))
            .is_empty());
    }

    /// The determinism contract of the partition pool: every thread count
    /// (including oversubscription far beyond the partition count) produces
    /// the identical assignment, for both search families.
    #[test]
    fn thread_count_never_changes_the_plan() {
        let (workers, tasks) = scenario(6, 12);
        let wids: Vec<WorkerId> = workers.ids().collect();
        let tids: Vec<TaskId> = tasks.ids().collect();
        for mode in [SearchMode::Exact, SearchMode::Guided] {
            let mut reference = None;
            for threads in [1usize, 2, 4, 16] {
                let config = AssignConfig {
                    threads,
                    ..AssignConfig::unit_speed()
                };
                let mut planner = Planner::new(config, mode);
                if mode == SearchMode::Guided {
                    planner = planner.with_tvf(TaskValueFunction::new(8, 42));
                }
                let (assignment, report) =
                    planner.plan(&wids, &tids, &workers, &tasks, Timestamp(0.0));
                assert!(report.threads_used >= 1 && report.threads_used <= threads);
                match &reference {
                    None => reference = Some(assignment),
                    Some(r) => assert_eq!(
                        r, &assignment,
                        "mode {mode:?} diverged at threads={threads}"
                    ),
                }
            }
        }
    }
}
