//! Arena-style stores for tasks and workers.
//!
//! Assignment algorithms and the streaming simulator refer to tasks and
//! workers by their dense identifiers; the stores own the actual records and
//! provide O(1) lookup plus the filtered views the algorithms need (open
//! tasks, available workers).

use crate::task::{Task, TaskId};
use crate::time::Timestamp;
use crate::worker::{Worker, WorkerId};
use serde::{Deserialize, Serialize};

/// Owning collection of tasks, addressable by [`TaskId`].
///
/// Task identifiers are expected to be dense (0..n); the workload generators
/// in `datawa-sim` always produce dense ids, and [`TaskStore::insert`] assigns
/// the next dense id itself.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TaskStore {
    tasks: Vec<Task>,
}

impl TaskStore {
    /// Creates an empty store.
    pub fn new() -> TaskStore {
        TaskStore { tasks: Vec::new() }
    }

    /// Creates a store from pre-built tasks, re-indexing their ids densely in
    /// input order.
    pub fn from_tasks<I: IntoIterator<Item = Task>>(tasks: I) -> TaskStore {
        let mut store = TaskStore::new();
        for t in tasks {
            store.insert_with_location(t.location, t.publication, t.expiration);
        }
        store
    }

    /// Inserts a task built from its components, assigning the next dense id.
    pub fn insert_with_location(
        &mut self,
        location: crate::location::Location,
        publication: Timestamp,
        expiration: Timestamp,
    ) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks.push(Task::new(id, location, publication, expiration));
        id
    }

    /// Inserts an already-constructed task, overriding its id with the next
    /// dense id, and returns the assigned id.
    pub fn insert(&mut self, mut task: Task) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        task.id = id;
        self.tasks.push(task);
        id
    }

    /// Number of tasks in the store.
    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the store is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Borrow a task by id. Panics if the id is out of range.
    #[inline]
    pub fn get(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Borrow a task by id if present.
    #[inline]
    pub fn try_get(&self, id: TaskId) -> Option<&Task> {
        self.tasks.get(id.index())
    }

    /// Mutable borrow of a task by id.
    #[inline]
    pub fn get_mut(&mut self, id: TaskId) -> &mut Task {
        &mut self.tasks[id.index()]
    }

    /// Iterates over all tasks.
    pub fn iter(&self) -> impl Iterator<Item = &Task> {
        self.tasks.iter()
    }

    /// All task ids.
    pub fn ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len() as u32).map(TaskId)
    }

    /// Ids of tasks that are open (published, unexpired) at `now`.
    pub fn open_at(&self, now: Timestamp) -> Vec<TaskId> {
        self.tasks
            .iter()
            .filter(|t| t.is_open_at(now))
            .map(|t| t.id)
            .collect()
    }

    /// Raw slice of tasks (dense id order).
    #[inline]
    pub fn as_slice(&self) -> &[Task] {
        &self.tasks
    }
}

/// Owning collection of workers, addressable by [`WorkerId`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WorkerStore {
    workers: Vec<Worker>,
}

impl WorkerStore {
    /// Creates an empty store.
    pub fn new() -> WorkerStore {
        WorkerStore { workers: Vec::new() }
    }

    /// Creates a store from pre-built workers, re-indexing their ids densely
    /// in input order.
    pub fn from_workers<I: IntoIterator<Item = Worker>>(workers: I) -> WorkerStore {
        let mut store = WorkerStore::new();
        for w in workers {
            store.insert(w);
        }
        store
    }

    /// Inserts a worker, overriding its id with the next dense id, and returns
    /// the assigned id.
    pub fn insert(&mut self, mut worker: Worker) -> WorkerId {
        let id = WorkerId(self.workers.len() as u32);
        worker.id = id;
        self.workers.push(worker);
        id
    }

    /// Number of workers in the store.
    #[inline]
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the store is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Borrow a worker by id. Panics if the id is out of range.
    #[inline]
    pub fn get(&self, id: WorkerId) -> &Worker {
        &self.workers[id.index()]
    }

    /// Borrow a worker by id if present.
    #[inline]
    pub fn try_get(&self, id: WorkerId) -> Option<&Worker> {
        self.workers.get(id.index())
    }

    /// Mutable borrow of a worker by id.
    #[inline]
    pub fn get_mut(&mut self, id: WorkerId) -> &mut Worker {
        &mut self.workers[id.index()]
    }

    /// Iterates over all workers.
    pub fn iter(&self) -> impl Iterator<Item = &Worker> {
        self.workers.iter()
    }

    /// Mutable iteration over all workers (the simulator moves workers along
    /// their planned legs).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Worker> {
        self.workers.iter_mut()
    }

    /// All worker ids.
    pub fn ids(&self) -> impl Iterator<Item = WorkerId> + '_ {
        (0..self.workers.len() as u32).map(WorkerId)
    }

    /// Ids of workers that are online and within their availability window at
    /// `now`.
    pub fn available_at(&self, now: Timestamp) -> Vec<WorkerId> {
        self.workers
            .iter()
            .filter(|w| w.is_available_at(now))
            .map(|w| w.id)
            .collect()
    }

    /// Raw slice of workers (dense id order).
    #[inline]
    pub fn as_slice(&self) -> &[Worker] {
        &self.workers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::location::Location;

    #[test]
    fn task_store_assigns_dense_ids() {
        let mut s = TaskStore::new();
        let a = s.insert_with_location(Location::new(0.0, 0.0), Timestamp(0.0), Timestamp(5.0));
        let b = s.insert_with_location(Location::new(1.0, 0.0), Timestamp(1.0), Timestamp(6.0));
        assert_eq!(a, TaskId(0));
        assert_eq!(b, TaskId(1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(b).publication, Timestamp(1.0));
    }

    #[test]
    fn open_at_filters_by_lifetime() {
        let mut s = TaskStore::new();
        s.insert_with_location(Location::ORIGIN, Timestamp(0.0), Timestamp(5.0));
        s.insert_with_location(Location::ORIGIN, Timestamp(10.0), Timestamp(15.0));
        assert_eq!(s.open_at(Timestamp(1.0)), vec![TaskId(0)]);
        assert_eq!(s.open_at(Timestamp(11.0)), vec![TaskId(1)]);
        assert!(s.open_at(Timestamp(6.0)).is_empty());
    }

    #[test]
    fn worker_store_reindexes_ids() {
        let w = Worker::new(WorkerId(99), Location::ORIGIN, 1.0, Timestamp(0.0), Timestamp(10.0));
        let mut s = WorkerStore::new();
        let id = s.insert(w);
        assert_eq!(id, WorkerId(0));
        assert_eq!(s.get(id).id, WorkerId(0));
    }

    #[test]
    fn available_at_uses_windows() {
        let mut s = WorkerStore::new();
        s.insert(Worker::new(WorkerId(0), Location::ORIGIN, 1.0, Timestamp(0.0), Timestamp(10.0)));
        s.insert(Worker::new(WorkerId(0), Location::ORIGIN, 1.0, Timestamp(20.0), Timestamp(30.0)));
        assert_eq!(s.available_at(Timestamp(5.0)), vec![WorkerId(0)]);
        assert_eq!(s.available_at(Timestamp(25.0)), vec![WorkerId(1)]);
        assert!(s.available_at(Timestamp(15.0)).is_empty());
    }

    #[test]
    fn from_tasks_reindexes() {
        let t = Task::new(TaskId(7), Location::ORIGIN, Timestamp(0.0), Timestamp(1.0));
        let s = TaskStore::from_tasks(vec![t]);
        assert_eq!(s.get(TaskId(0)).id, TaskId(0));
    }
}
