//! The assignment experiments of Fig. 7–11: the number of assigned tasks and
//! the CPU time per time instance for the five methods (Greedy, FTA, DTA,
//! DTA+TP, DATA-WA) while sweeping |S|, |W|, the reachable distance `d`, the
//! availability window `off − on` and the task valid time `e − p`.
//!
//! Since the `datawa-stream` migration every sweep runs on the discrete-event
//! engine (in replay-compatible mode, so the reported numbers are identical
//! to the legacy synchronous driver at `replan_every = 1`); the
//! `DATAWA_REPLAN` / `DATAWA_REPLAN_DT` environment variables expose the
//! engine's event- and time-batched re-planning to every binary.

use crate::params::{Dataset, ExperimentScale};
use datawa_assign::PolicyKind;
use datawa_predict::DdgnnPredictor;
use datawa_sim::{
    run_policy, run_prediction, train_tvf_on_prefix, PipelineConfig, SyntheticTrace, TraceSpec,
};
use serde::Serialize;

/// The sweep axis of one assignment experiment.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepAxis {
    /// Fig. 7: number of tasks |S| (raw Table III values; the experiment scale
    /// is applied on top).
    Tasks(Vec<usize>),
    /// Fig. 8: number of workers |W|.
    Workers(Vec<usize>),
    /// Fig. 9: reachable distance of workers, in kilometres.
    ReachableDistance(Vec<f64>),
    /// Fig. 10: availability window length, in hours.
    AvailableTime(Vec<f64>),
    /// Fig. 11: task valid time, in seconds.
    ValidTime(Vec<f64>),
}

impl SweepAxis {
    /// Axis label used in the output tables.
    pub fn label(&self) -> &'static str {
        match self {
            SweepAxis::Tasks(_) => "|S|",
            SweepAxis::Workers(_) => "|W|",
            SweepAxis::ReachableDistance(_) => "d (km)",
            SweepAxis::AvailableTime(_) => "off-on (h)",
            SweepAxis::ValidTime(_) => "e-p (s)",
        }
    }

    /// The values swept (as display strings) paired with the trace spec they
    /// induce.
    fn instantiate(&self, base: TraceSpec, scale: ExperimentScale) -> Vec<(String, TraceSpec)> {
        match self {
            SweepAxis::Tasks(values) => values
                .iter()
                .map(|&v| (v.to_string(), base.with_tasks(scale.apply(v))))
                .collect(),
            SweepAxis::Workers(values) => values
                .iter()
                .map(|&v| (v.to_string(), base.with_workers(scale.apply(v))))
                .collect(),
            SweepAxis::ReachableDistance(values) => values
                .iter()
                .map(|&v| (format!("{v}"), base.with_reachable_distance(v)))
                .collect(),
            SweepAxis::AvailableTime(values) => values
                .iter()
                .map(|&v| (format!("{v}"), base.with_available_hours(v)))
                .collect(),
            SweepAxis::ValidTime(values) => values
                .iter()
                .map(|&v| (format!("{v}"), base.with_valid_time(v)))
                .collect(),
        }
    }
}

/// One row of a Fig. 7–11 series: one policy at one sweep value.
#[derive(Debug, Clone, Serialize)]
pub struct AssignmentRow {
    /// Dataset name.
    pub dataset: String,
    /// Sweep axis label.
    pub axis: String,
    /// Sweep value (display form, e.g. "9000" or "0.5").
    pub value: String,
    /// Policy name.
    pub policy: String,
    /// Number of assigned tasks.
    pub assigned_tasks: usize,
    /// Mean planning CPU time per time instance, in seconds.
    pub cpu_seconds: f64,
    /// Arrival events processed by the engine for this run.
    pub events: usize,
}

/// Runs one assignment sweep (one of Fig. 7–11) on one dataset for all five
/// policies, applying the experiment scale to keep runtimes tractable.
pub fn assignment_sweep(
    dataset: Dataset,
    axis: SweepAxis,
    scale: ExperimentScale,
    config: &PipelineConfig,
) -> Vec<AssignmentRow> {
    let base = dataset.spec().scaled(scale.factor);
    let mut rows = Vec::new();
    for (value, spec) in axis.instantiate(base, scale) {
        let trace = SyntheticTrace::generate(spec);
        // Shared prediction for the prediction-aware policies: the proposed
        // DDGNN, as in the paper's end-to-end configuration.
        let cells = (config.grid_cells_per_side * config.grid_cells_per_side) as usize;
        let mut predictor = DdgnnPredictor::with_defaults(cells, config.k, spec.seed);
        let (_, predicted) = run_prediction(&mut predictor, &trace, config);
        for policy in PolicyKind::all() {
            let predictions: &[_] = if policy.uses_prediction() {
                &predicted
            } else {
                &[]
            };
            // DATA-WA trains its TVF on DFSearch samples from this trace.
            let tvf_for_run = if policy == PolicyKind::DataWa {
                Some(train_tvf_on_prefix(&trace, config))
            } else {
                None
            };
            let summary = run_policy(&trace, policy, predictions, tvf_for_run, config);
            rows.push(AssignmentRow {
                dataset: dataset.name().to_string(),
                axis: axis.label().to_string(),
                value: value.clone(),
                policy: summary.policy,
                assigned_tasks: summary.assigned_tasks,
                cpu_seconds: summary.mean_cpu_seconds,
                events: summary.events,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use datawa_predict::TrainingConfig;

    fn fast_config() -> PipelineConfig {
        PipelineConfig {
            grid_cells_per_side: 3,
            k: 2,
            history_len: 3,
            training: TrainingConfig {
                epochs: 1,
                learning_rate: 0.02,
            },
            replan_every: 4,
            tvf_training_instants: 2,
            tvf_epochs: 5,
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn sweep_produces_all_policy_rows_and_expected_ordering_signals() {
        let rows = assignment_sweep(
            Dataset::Yueche,
            SweepAxis::Workers(vec![200, 600]),
            ExperimentScale::fixed(0.01),
            &fast_config(),
        );
        // 2 sweep values × 5 policies.
        assert_eq!(rows.len(), 10);
        let policies: std::collections::HashSet<&str> =
            rows.iter().map(|r| r.policy.as_str()).collect();
        assert_eq!(policies.len(), 5);
        // More workers must not assign fewer tasks for the adaptive methods.
        let assigned = |value: &str, policy: &str| {
            rows.iter()
                .find(|r| r.value == value && r.policy == policy)
                .map(|r| r.assigned_tasks)
                .unwrap()
        };
        assert!(assigned("600", "DTA") >= assigned("200", "DTA"));
        for r in &rows {
            assert!(r.cpu_seconds >= 0.0);
            assert_eq!(r.axis, "|W|");
        }
    }
}
