//! Peak-hour scenario: the food-delivery / ride-hailing motivation from the
//! paper's introduction. Demand surges in a handful of hotspot regions while
//! supply (online drivers) stays flat, and the five assignment methods are
//! compared on how many requests they manage to serve and how much planning
//! CPU they burn per time instance. The three demand predictors are also
//! compared head-to-head on the same trace (the Fig. 5 story in miniature).
//!
//! ```text
//! cargo run --release --example peak_hour_comparison
//! ```

use datawa::prelude::*;

fn main() {
    // A dense DiDi-like evening peak at 4 % scale: many tasks per worker.
    let spec = TraceSpec::didi().scaled(0.04).with_available_hours(0.75);
    let trace = SyntheticTrace::generate(spec);
    println!(
        "peak-hour trace: {} drivers, {} requests, {:.0}x{:.0} km area",
        trace.workers.len(),
        trace.tasks.len(),
        trace.spec.area_km,
        trace.spec.area_km
    );

    let config = PipelineConfig {
        training: TrainingConfig {
            epochs: 3,
            learning_rate: 0.02,
        },
        replan_every: 2,
        ..PipelineConfig::default()
    };
    let cells = (config.grid_cells_per_side * config.grid_cells_per_side) as usize;

    // --- Demand prediction comparison (Fig. 5 in miniature) ---------------
    println!("\n[demand prediction]  model            AP     train(s)  test(s)");
    let mut predictors: Vec<Box<dyn DemandPredictor>> = vec![
        Box::new(LstmPredictor::new(config.k, 12, 7)),
        Box::new(GraphWaveNetPredictor::new(cells, config.k, 12, 8, 7)),
        Box::new(DdgnnPredictor::with_defaults(cells, config.k, 7)),
    ];
    let mut best_predictions: Vec<PredictedTaskInput> = Vec::new();
    let mut best_ap = -1.0;
    for model in predictors.iter_mut() {
        let (summary, predicted) = run_prediction(model.as_mut(), &trace, &config);
        println!(
            "                     {:<15} {:.3}  {:>7.1}  {:>7.3}",
            summary.model, summary.average_precision, summary.train_seconds, summary.test_seconds
        );
        if summary.average_precision > best_ap {
            best_ap = summary.average_precision;
            best_predictions = predicted;
        }
    }

    // --- Assignment comparison (Fig. 7–11 in miniature) --------------------
    println!("\n[assignment]         method    assigned   CPU/instance (s)");
    for policy in PolicyKind::all() {
        let predictions: &[_] = if policy.uses_prediction() {
            &best_predictions
        } else {
            &[]
        };
        let summary = run_policy(&trace, policy, predictions, None, &config);
        println!(
            "                     {:<9} {:>8}   {:.4}",
            summary.policy, summary.assigned_tasks, summary.mean_cpu_seconds
        );
    }
    println!("\nExpected shape: DTA+TP and DATA-WA serve the most requests; Greedy is the");
    println!("fastest but serves the fewest; DATA-WA needs well under the planning time of");
    println!("DTA+TP thanks to the learned task value function.");
}
