//! Ablation benchmarks for the design choices called out in DESIGN.md §3:
//! (1) TVF-guided search vs exact DFSearch, (2) worker dependency separation
//! on/off, (3) DDGNN's learned dynamic adjacency vs an identity adjacency,
//! (4) the maximal-valid-sequence length cap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datawa_assign::{AssignConfig, Planner, SearchMode, TaskValueFunction};
use datawa_bench::{small_trace, snapshot_at_mid};
use datawa_predict::{DdgnnPredictor, DemandPredictor};
use datawa_sim::{build_series, PipelineConfig};
use std::time::Duration;

fn ablation_tvf_vs_exact(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/tvf_vs_exact");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900));
    let trace = small_trace(0.05);
    let (workers, tasks, now) = snapshot_at_mid(&trace);
    let mut exact = Planner::new(AssignConfig::default(), SearchMode::Exact);
    let mut guided = Planner::new(AssignConfig::default(), SearchMode::Guided)
        .with_tvf(TaskValueFunction::new(16, 0));
    group.bench_function("exact_dfsearch", |b| {
        b.iter(|| {
            std::hint::black_box(
                exact
                    .plan(&workers, &tasks, &trace.workers, &trace.tasks, now)
                    .0
                    .assigned_count(),
            )
        })
    });
    group.bench_function("tvf_guided", |b| {
        b.iter(|| {
            std::hint::black_box(
                guided
                    .plan(&workers, &tasks, &trace.workers, &trace.tasks, now)
                    .0
                    .assigned_count(),
            )
        })
    });
    group.finish();
}

fn ablation_dependency_separation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/worker_dependency_separation");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900));
    let trace = small_trace(0.05);
    let (workers, tasks, now) = snapshot_at_mid(&trace);
    for (name, separation) in [("with_separation", true), ("without_separation", false)] {
        let config = AssignConfig {
            use_dependency_separation: separation,
            ..AssignConfig::default()
        };
        let mut planner = Planner::new(config, SearchMode::Exact);
        group.bench_function(name, |b| {
            b.iter(|| {
                std::hint::black_box(
                    planner
                        .plan(&workers, &tasks, &trace.workers, &trace.tasks, now)
                        .0
                        .assigned_count(),
                )
            })
        });
    }
    group.finish();
}

fn ablation_dynamic_adjacency(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/ddgnn_dynamic_adjacency");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900));
    let trace = small_trace(0.03);
    let config = PipelineConfig {
        grid_cells_per_side: 4,
        ..PipelineConfig::default()
    };
    let series = build_series(&trace, &config);
    let (_, mut test) = series.split(0.8);
    test.examples.truncate(24);
    let full = DdgnnPredictor::with_defaults(16, config.k, 0);
    let ablated = DdgnnPredictor::with_defaults(16, config.k, 0).without_dynamic_adjacency();
    group.bench_function("dynamic_adjacency", |b| {
        b.iter(|| std::hint::black_box(full.evaluate(&test).average_precision))
    });
    group.bench_function("identity_adjacency", |b| {
        b.iter(|| std::hint::black_box(ablated.evaluate(&test).average_precision))
    });
    group.finish();
}

fn ablation_sequence_cap(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/max_sequence_len");
    group
        .sample_size(10)
        .measurement_time(Duration::from_millis(900));
    let trace = small_trace(0.05);
    let (workers, tasks, now) = snapshot_at_mid(&trace);
    for cap in [1usize, 2, 3] {
        let config = AssignConfig {
            max_sequence_len: cap,
            ..AssignConfig::default()
        };
        let mut planner = Planner::new(config, SearchMode::Exact);
        group.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    planner
                        .plan(&workers, &tasks, &trace.workers, &trace.tasks, now)
                        .0
                        .assigned_count(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_tvf_vs_exact,
    ablation_dependency_separation,
    ablation_dynamic_adjacency,
    ablation_sequence_cap
);
criterion_main!(benches);
