//! Scenario-conditioned prediction report: Average Precision of the three
//! demand predictors (LSTM, Graph-WaveNet, DDGNN) under the distribution
//! shift created by each of the four built-in `datawa-stream` scenario
//! generators, followed by the online-vs-blind assignment comparison (DTA+TP
//! over a live DDGNN [`OnlineForecaster`] against prediction-blind DTA).
//!
//! ```text
//! cargo run --release -p datawa-experiments --bin forecast_scenarios
//! DATAWA_SCALE=0.5 cargo run --release -p datawa-experiments --bin forecast_scenarios
//! ```
//!
//! [`OnlineForecaster`]: datawa_predict::OnlineForecaster

use datawa_experiments::{
    format_table, scenario_online_vs_blind, scenario_prediction_report, ExperimentScale,
    ForecastScenarioConfig, Table,
};
use datawa_stream::ScenarioSpec;

fn main() {
    let scale = ExperimentScale::from_env();
    // The scale factor maps the Yueche-like magnitudes onto the scenarios,
    // matching the stream_scenarios binary.
    let spec = ScenarioSpec::small()
        .with_workers(((624.0 * scale.factor).round() as usize).max(6))
        .with_tasks(((11_052.0 * scale.factor).round() as usize).max(80));
    let config = ForecastScenarioConfig::default();

    println!(
        "scenario-conditioned prediction — {} workers, {} tasks per scenario \
         (scale {:.3}), {}×{} grid, ΔT={}s k={} P={}\n",
        spec.workers,
        spec.tasks,
        scale.factor,
        config.grid_cells_per_side,
        config.grid_cells_per_side,
        config.delta_t,
        config.k,
        config.history_len,
    );

    let mut ap_table = Table::new(vec!["Scenario", "Model", "AP", "Train (s)", "Test (s)"]);
    for row in scenario_prediction_report(spec, &config) {
        ap_table.push_row(vec![
            row.scenario,
            row.model,
            format!("{:.3}", row.average_precision),
            format!("{:.2}", row.train_seconds),
            format!("{:.3}", row.test_seconds),
        ]);
    }
    println!("{}", format_table(&ap_table));

    let mut assign_table = Table::new(vec![
        "Scenario",
        "DTA (blind)",
        "DTA+TP (online DDGNN)",
        "Re-forecasts",
    ]);
    let rows = scenario_online_vs_blind(spec, &config);
    let mut total_refreshes = 0usize;
    for row in rows {
        total_refreshes += row.refreshes;
        assign_table.push_row(vec![
            row.scenario,
            row.blind_assigned.to_string(),
            row.online_assigned.to_string(),
            row.refreshes.to_string(),
        ]);
    }
    println!("{}", format_table(&assign_table));
    // The CI forecast-smoke step greps this line: a zero here means the
    // online provider never actually re-forecast mid-stream.
    println!("forecast_refreshes={total_refreshes}");
    if total_refreshes == 0 {
        eprintln!("error: the online forecaster performed no re-forecasts");
        std::process::exit(1);
    }
}
