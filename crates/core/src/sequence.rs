//! Task sequences, arrival times (Eq. 1) and validity (Definition 4).

use crate::store::TaskStore;
use crate::task::TaskId;
use crate::time::{Duration, Timestamp};
use crate::travel::TravelModel;
use crate::worker::Worker;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An ordered sequence of tasks `R(S_w)` to be performed by one worker
/// (Definition 3).
///
/// The sequence stores only task ids; geometry and deadlines are looked up in
/// a [`TaskStore`] when computing arrival times or checking validity.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash, Serialize, Deserialize)]
pub struct TaskSequence {
    tasks: Vec<TaskId>,
}

/// The reason a task sequence is invalid for a worker (Definition 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidityViolation {
    /// Constraint (i): some task would be reached at or after its expiration.
    Expiration(TaskId),
    /// Constraint (ii): some task would be reached at or after the worker's
    /// offline time.
    OfflineTime(TaskId),
    /// Constraint (iii): some task lies outside the worker's reachable range
    /// measured from the worker's current location.
    OutOfRange(TaskId),
    /// The sequence assigns the same task more than once.
    Duplicate(TaskId),
}

impl fmt::Display for ValidityViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidityViolation::Expiration(t) => write!(f, "{t} reached after its expiration"),
            ValidityViolation::OfflineTime(t) => {
                write!(f, "{t} reached after the worker goes offline")
            }
            ValidityViolation::OutOfRange(t) => {
                write!(f, "{t} outside the worker's reachable range")
            }
            ValidityViolation::Duplicate(t) => write!(f, "{t} appears more than once"),
        }
    }
}

/// Arrival times `t_{R,w}(s_i.l)` for each task of a sequence, plus the
/// completion time of the whole sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTimes {
    /// Arrival time at each task, in sequence order.
    pub per_task: Vec<Timestamp>,
    /// Arrival time at the last task (equal to `per_task.last()`), or `now`
    /// for an empty sequence.
    pub completion: Timestamp,
    /// Total distance travelled along the sequence (from the worker's start
    /// location through every task location in order).
    pub total_distance: f64,
}

impl TaskSequence {
    /// The empty sequence.
    pub fn empty() -> TaskSequence {
        TaskSequence { tasks: Vec::new() }
    }

    /// Builds a sequence from task ids in execution order.
    pub fn from_ids<I: IntoIterator<Item = TaskId>>(ids: I) -> TaskSequence {
        TaskSequence {
            tasks: ids.into_iter().collect(),
        }
    }

    /// Number of tasks in the sequence.
    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// The tasks in execution order.
    #[inline]
    pub fn tasks(&self) -> &[TaskId] {
        &self.tasks
    }

    /// First task of the sequence, if any (the adaptive algorithm dispatches
    /// `VR(w)[0]` to each idle worker, Alg. 3 line 12).
    #[inline]
    pub fn first(&self) -> Option<TaskId> {
        self.tasks.first().copied()
    }

    /// Appends a task to the end of the sequence.
    pub fn push(&mut self, task: TaskId) {
        self.tasks.push(task);
    }

    /// Removes and returns the first task (after the worker has departed for
    /// it), shifting the rest forward.
    pub fn pop_front(&mut self) -> Option<TaskId> {
        if self.tasks.is_empty() {
            None
        } else {
            Some(self.tasks.remove(0))
        }
    }

    /// Whether the sequence contains `task`.
    pub fn contains(&self, task: TaskId) -> bool {
        self.tasks.contains(&task)
    }

    /// Iterates over the task ids in execution order.
    pub fn iter(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.tasks.iter().copied()
    }

    /// Computes the arrival time at every task of the sequence per Eq. 1:
    ///
    /// * the first task is reached at `now + c(w.l, s_1.l)`;
    /// * each subsequent task is reached at the previous arrival time plus the
    ///   travel time between the two task locations.
    ///
    /// The worker is assumed to start from its current location at `now`.
    /// Task service times are zero, as in the paper.
    pub fn arrival_times(
        &self,
        worker: &Worker,
        tasks: &TaskStore,
        travel: &TravelModel,
        now: Timestamp,
    ) -> ArrivalTimes {
        let mut per_task = Vec::with_capacity(self.tasks.len());
        let mut current_loc = worker.location;
        let mut current_time = now;
        let mut total_distance = 0.0;
        for &tid in &self.tasks {
            let task = tasks.get(tid);
            let dist = travel.travel_distance(&current_loc, &task.location);
            let tt = travel.travel_time(&current_loc, &task.location);
            current_time += tt;
            total_distance += dist;
            per_task.push(current_time);
            current_loc = task.location;
        }
        ArrivalTimes {
            completion: per_task.last().copied().unwrap_or(now),
            per_task,
            total_distance,
        }
    }

    /// Checks the three validity constraints of Definition 4 (plus the
    /// implicit single-assignment constraint that a task appears only once in
    /// the sequence), returning the first violation found, or `None` when the
    /// sequence is a valid task sequence `VR(S_w)` for `worker` starting at
    /// `now`.
    ///
    /// Note the range constraint (iii) is measured from the worker's *current*
    /// location to each task, matching the paper (`td(w.l, s_i.l) < w.d`), not
    /// cumulatively along the route.
    pub fn check_validity(
        &self,
        worker: &Worker,
        tasks: &TaskStore,
        travel: &TravelModel,
        now: Timestamp,
    ) -> Option<ValidityViolation> {
        // Duplicate detection without allocation for the common short case.
        for (i, &a) in self.tasks.iter().enumerate() {
            if self.tasks[i + 1..].contains(&a) {
                return Some(ValidityViolation::Duplicate(a));
            }
        }
        let arrivals = self.arrival_times(worker, tasks, travel, now);
        for (idx, &tid) in self.tasks.iter().enumerate() {
            let task = tasks.get(tid);
            let arrive = arrivals.per_task[idx];
            if arrive.0 >= task.expiration.0 {
                return Some(ValidityViolation::Expiration(tid));
            }
            if arrive.0 >= worker.off().0 {
                return Some(ValidityViolation::OfflineTime(tid));
            }
            if travel.travel_distance(&worker.location, &task.location) > worker.reachable_distance
            {
                return Some(ValidityViolation::OutOfRange(tid));
            }
        }
        None
    }

    /// Whether the sequence is valid for `worker` at `now` (Definition 4).
    pub fn is_valid(
        &self,
        worker: &Worker,
        tasks: &TaskStore,
        travel: &TravelModel,
        now: Timestamp,
    ) -> bool {
        self.check_validity(worker, tasks, travel, now).is_none()
    }

    /// The completion time of the sequence (arrival at the last task), used to
    /// compare orderings of the same task set when selecting the *maximal*
    /// valid task sequence (Eq. 10).
    pub fn completion_time(
        &self,
        worker: &Worker,
        tasks: &TaskStore,
        travel: &TravelModel,
        now: Timestamp,
    ) -> Timestamp {
        self.arrival_times(worker, tasks, travel, now).completion
    }

    /// Total travel time along the sequence.
    pub fn total_travel_time(
        &self,
        worker: &Worker,
        tasks: &TaskStore,
        travel: &TravelModel,
        now: Timestamp,
    ) -> Duration {
        self.arrival_times(worker, tasks, travel, now).completion - now
    }
}

impl fmt::Display for TaskSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, t) in self.tasks.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<TaskId> for TaskSequence {
    fn from_iter<I: IntoIterator<Item = TaskId>>(iter: I) -> Self {
        TaskSequence::from_ids(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::location::Location;
    use crate::task::Task;
    use crate::worker::WorkerId;

    fn fixture() -> (Worker, TaskStore, TravelModel) {
        let worker = Worker::new(
            WorkerId(0),
            Location::new(0.0, 0.0),
            10.0,
            Timestamp(0.0),
            Timestamp(100.0),
        );
        let mut store = TaskStore::new();
        // Tasks laid out on a line at x = 1, 2, 3 with generous deadlines.
        store.insert(Task::new(
            TaskId(0),
            Location::new(1.0, 0.0),
            Timestamp(0.0),
            Timestamp(50.0),
        ));
        store.insert(Task::new(
            TaskId(0),
            Location::new(2.0, 0.0),
            Timestamp(0.0),
            Timestamp(50.0),
        ));
        store.insert(Task::new(
            TaskId(0),
            Location::new(3.0, 0.0),
            Timestamp(0.0),
            Timestamp(50.0),
        ));
        (worker, store, TravelModel::euclidean(1.0))
    }

    #[test]
    fn arrival_times_follow_eq1() {
        let (w, s, travel) = fixture();
        let seq = TaskSequence::from_ids([TaskId(0), TaskId(1), TaskId(2)]);
        let arr = seq.arrival_times(&w, &s, &travel, Timestamp(0.0));
        assert_eq!(
            arr.per_task,
            vec![Timestamp(1.0), Timestamp(2.0), Timestamp(3.0)]
        );
        assert_eq!(arr.completion, Timestamp(3.0));
        assert!((arr.total_distance - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sequence_completes_immediately() {
        let (w, s, travel) = fixture();
        let seq = TaskSequence::empty();
        let arr = seq.arrival_times(&w, &s, &travel, Timestamp(5.0));
        assert_eq!(arr.completion, Timestamp(5.0));
        assert!(arr.per_task.is_empty());
        assert!(seq.is_valid(&w, &s, &travel, Timestamp(5.0)));
    }

    #[test]
    fn expiration_violation_detected() {
        let (w, mut s, travel) = fixture();
        // Task expiring at t=0.5 but 1s away.
        let tid = s.insert(Task::new(
            TaskId(0),
            Location::new(1.0, 0.0),
            Timestamp(0.0),
            Timestamp(0.5),
        ));
        let seq = TaskSequence::from_ids([tid]);
        assert_eq!(
            seq.check_validity(&w, &s, &travel, Timestamp(0.0)),
            Some(ValidityViolation::Expiration(tid))
        );
    }

    #[test]
    fn offline_violation_detected() {
        let (mut w, s, travel) = fixture();
        w.window = crate::worker::AvailabilityWindow::new(Timestamp(0.0), Timestamp(2.5));
        let seq = TaskSequence::from_ids([TaskId(0), TaskId(1), TaskId(2)]);
        assert_eq!(
            seq.check_validity(&w, &s, &travel, Timestamp(0.0)),
            Some(ValidityViolation::OfflineTime(TaskId(2)))
        );
    }

    #[test]
    fn out_of_range_violation_detected() {
        let (mut w, s, travel) = fixture();
        w.reachable_distance = 1.5;
        let seq = TaskSequence::from_ids([TaskId(0), TaskId(1)]);
        assert_eq!(
            seq.check_validity(&w, &s, &travel, Timestamp(0.0)),
            Some(ValidityViolation::OutOfRange(TaskId(1)))
        );
    }

    #[test]
    fn duplicate_violation_detected() {
        let (w, s, travel) = fixture();
        let seq = TaskSequence::from_ids([TaskId(0), TaskId(0)]);
        assert_eq!(
            seq.check_validity(&w, &s, &travel, Timestamp(0.0)),
            Some(ValidityViolation::Duplicate(TaskId(0)))
        );
    }

    #[test]
    fn valid_sequence_passes_all_checks() {
        let (w, s, travel) = fixture();
        let seq = TaskSequence::from_ids([TaskId(0), TaskId(1), TaskId(2)]);
        assert!(seq.is_valid(&w, &s, &travel, Timestamp(0.0)));
        assert_eq!(
            seq.completion_time(&w, &s, &travel, Timestamp(0.0)),
            Timestamp(3.0)
        );
        assert_eq!(
            seq.total_travel_time(&w, &s, &travel, Timestamp(0.0)),
            Duration(3.0)
        );
    }

    #[test]
    fn pop_front_and_first() {
        let mut seq = TaskSequence::from_ids([TaskId(3), TaskId(5)]);
        assert_eq!(seq.first(), Some(TaskId(3)));
        assert_eq!(seq.pop_front(), Some(TaskId(3)));
        assert_eq!(seq.first(), Some(TaskId(5)));
        assert_eq!(seq.pop_front(), Some(TaskId(5)));
        assert_eq!(seq.pop_front(), None);
    }

    #[test]
    fn display_formats_like_the_paper() {
        let seq = TaskSequence::from_ids([TaskId(1), TaskId(3)]);
        assert_eq!(format!("{seq}"), "(s1, s3)");
    }
}
