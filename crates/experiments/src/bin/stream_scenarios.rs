//! Runs the four built-in `datawa-stream` scenario generators (uniform
//! baseline, rush-hour burst, hotspot drift, heavy-tailed churn) through the
//! discrete-event engine, comparing the non-predictive policies under
//! per-arrival and batched re-planning.
//!
//! ```text
//! cargo run --release -p datawa-experiments --bin stream_scenarios
//! DATAWA_SCALE=0.5 cargo run --release -p datawa-experiments --bin stream_scenarios
//! ```

use datawa_assign::{AdaptiveRunner, AssignConfig, PolicyKind};
use datawa_experiments::{format_table, ExperimentScale, Table};
use datawa_stream::{
    builtin_scenarios, CollectingSink, Decision, EngineConfig, ScenarioSpec, Session,
    StaticForecast,
};

fn main() {
    let scale = ExperimentScale::from_env();
    // The scale factor maps the Yueche-like magnitudes onto the scenarios.
    let spec = ScenarioSpec::small()
        .with_workers(((624.0 * scale.factor).round() as usize).max(4))
        .with_tasks(((11_052.0 * scale.factor).round() as usize).max(40));
    let configs: [(&str, EngineConfig); 3] = [
        ("per-arrival", EngineConfig::default()),
        ("every 8 events", EngineConfig::batched(8)),
        ("every 30 s", EngineConfig::ticked(30.0)),
    ];

    let mut table = Table::new(vec![
        "Scenario",
        "Replanning",
        "Method",
        "Assigned tasks",
        "Planning calls",
        "CPU time (s)",
        "Engine events",
        "Expired unserved",
        "Partitions (peak)",
        "Max part. |W|",
        "Pool occupancy",
    ]);
    for scenario in builtin_scenarios(spec) {
        let workload = scenario.generate();
        for (label, engine_config) in configs {
            for policy in [PolicyKind::Greedy, PolicyKind::Fta, PolicyKind::Dta] {
                let runner = AdaptiveRunner::new(AssignConfig::default(), policy);
                // Session API: open, ingest the workload, drain — with the
                // incremental decisions collected so unserved losses are
                // reportable alongside the totals.
                let mut sink = CollectingSink::new();
                let mut forecast = StaticForecast::default();
                let mut session = Session::open(&runner, &mut forecast, engine_config);
                session
                    .ingest_workload(&workload)
                    .expect("scenario workloads carry finite times");
                let outcome = session.close(&mut sink);
                let expired_unserved = sink
                    .decisions()
                    .iter()
                    .filter(|d| matches!(d, Decision::TaskExpired { .. }))
                    .count();
                assert_eq!(expired_unserved, outcome.stats.expired_open);
                table.push_row(vec![
                    scenario.name().to_string(),
                    label.to_string(),
                    policy.name().to_string(),
                    outcome.run.assigned_tasks.to_string(),
                    outcome.run.planning_calls.to_string(),
                    format!("{:.4}", outcome.run.mean_planning_seconds),
                    outcome.stats.events_processed.to_string(),
                    expired_unserved.to_string(),
                    outcome.stats.peak_partitions.to_string(),
                    outcome.stats.peak_partition_workers.to_string(),
                    outcome.stats.peak_pool_occupancy.to_string(),
                ]);
            }
        }
    }
    println!(
        "datawa-stream scenario tour — {} workers, {} tasks per scenario (scale {:.3}, planner threads: DATAWA_THREADS or AssignConfig::threads)\n",
        spec.workers, spec.tasks, scale.factor
    );
    println!("{}", format_table(&table));
}
