//! The threaded TCP acceptor: many concurrent client connections, one
//! dispatch session per tenant, admission control in front of the pump.
//!
//! ## Threads
//!
//! * **Acceptor** — blocks on `accept`, enforces the global connection cap
//!   (over-cap connections get a [`Frame::RetryAfter`] and are closed), and
//!   spawns one *connection* thread per accepted socket.
//! * **Connection (reader)** — performs the `Hello` handshake, registers
//!   the tenant (one live connection per tenant name), then decodes frames
//!   and applies admission control before pushing events into the tenant's
//!   [`NetSource`]. Protocol violations answer with a typed
//!   [`Frame::Error`] and close *this* connection only — a misbehaving
//!   client can never stall another tenant's session.
//! * **Pump** — one per tenant connection: owns the tenant's
//!   [`AdaptiveRunner`] and [`DispatchService`] and blocks on the
//!   `NetSource` channel, streaming every [`Decision`] back to the owning
//!   socket through a routing `FrameSink`. Ends by writing the session
//!   totals as a [`Frame::Closed`].
//!
//! ## Admission control
//!
//! Three layers, all answering with retry-after frames instead of silently
//! dropping (the refused event is *not* ingested; the client owns the
//! retry):
//!
//! 1. **Connection cap** (`max_connections`) at accept time.
//! 2. **Global backlog cap** (`global_pending_cap`): when the sum of all
//!    tenants' un-pumped backlogs exceeds it, the *stalest* tenant (oldest
//!    live connection) is shed — its ingests are refused with
//!    [`RetryReason::GlobalOverload`] until pressure clears.
//! 3. **Per-tenant quota** (`tenant_pending_quota`): a tenant whose own
//!    backlog exceeds its quota is refused with
//!    [`RetryReason::TenantQuota`].
//!
//! Below all of that, each session still runs the service layer's bounded
//! backlog (`ServiceConfig::max_pending`), so an admitted burst drains
//! through the engine exactly like any other `DispatchService` run.
//!
//! ## Fault tolerance
//!
//! Every tenant carries a **ledger** that outlives individual connections:
//! an append-only [`EventJournal`] of every admitted command plus the count
//! of decisions streamed back. The pump thread runs under a supervisor
//! (`catch_unwind`): a panicking pump — injected by the chaos harness or
//! genuine — is restarted from the journal via
//! [`DispatchService::open_recovered`], with a [`SkipSink`] suppressing the
//! replayed decision prefix the client already received; because the engine
//! is deterministic over its command sequence, the client-visible decision
//! stream continues with neither losses nor duplicates. While a replay is in
//! flight the reader refuses new events with
//! [`RetryReason::Recovering`] instead of presenting a dead socket.
//!
//! Admission refusals are **sticky per connection**: after the first refusal
//! every subsequent command is refused with the same reason until the client
//! reconnects. This guarantees the admitted sequence is an exact prefix of
//! the client's command log, which makes count-based resume exact: a
//! reconnecting client sends [`Frame::Resume`] with the decision count it
//! received, the server answers [`Frame::ResumeAck`] with the admitted
//! command count, and the client resends its log from that index. An orderly
//! `Close` ends the tenant's journaled identity; an unclean end (disconnect,
//! protocol error, shed) preserves the ledger for resume and skips the
//! session drain entirely, so no decision is fabricated on a dead stream.

use crate::wire::{read_frame, write_frame, ErrorCode, Frame, RetryReason, WireError};
use datawa_assign::{AdaptiveRunner, AssignConfig, PolicyKind, StaticForecast, TaskValueFunction};
use datawa_obs::{Counter, Histogram, MetricsRegistry};
use datawa_service::{
    DispatchService, IngestSource, NetSource, NetSourceHandle, PumpStatus, ServiceConfig,
    SharedSource, SourcePoll,
};
use datawa_stream::{Decision, DecisionSink, EventJournal, SkipSink};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Server configuration: which policy tenants run, and where the admission
/// limits sit.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Assignment policy every tenant session runs.
    pub policy: PolicyKind,
    /// Planner configuration (thread pool, travel model, …).
    pub assign: AssignConfig,
    /// Per-session service behaviour (engine config, bounded backlog).
    pub service: ServiceConfig,
    /// Shared-secret token `Hello` frames must carry; `None` disables auth.
    pub auth_token: Option<String>,
    /// Global cap on concurrently served connections.
    pub max_connections: usize,
    /// Per-tenant bound on events pushed but not yet pumped.
    pub tenant_pending_quota: usize,
    /// Server-wide bound on the summed backlog before the stalest tenant is
    /// shed.
    pub global_pending_cap: usize,
    /// Backoff carried in retry-after frames, in seconds.
    pub retry_after_secs: f64,
    /// Hidden width of the per-tenant Task Value Function (DATA-WA only).
    pub tvf_hidden: usize,
    /// Seed for the per-tenant TVF weights. Every tenant pump builds its TVF
    /// from `(tvf_hidden, tvf_seed)`, so a direct run constructed with
    /// `TaskValueFunction::new(tvf_hidden, tvf_seed)` is bit-identical.
    pub tvf_seed: u64,
    /// Deterministic fault injection: `(tenant, n)` entries panic that
    /// tenant's pump at the instant its journal holds exactly `n` events —
    /// i.e. just before the `n+1`-th event would be admitted. Each entry
    /// fires once; the supervisor then recovers the pump from its journal.
    /// Empty (the default) disables injection.
    pub pump_kills: Vec<(String, u64)>,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            policy: PolicyKind::Greedy,
            assign: AssignConfig::default(),
            service: ServiceConfig::default(),
            auth_token: None,
            max_connections: 64,
            tenant_pending_quota: 1024,
            global_pending_cap: 8192,
            retry_after_secs: 0.05,
            tvf_hidden: 8,
            tvf_seed: 0,
            pump_kills: Vec::new(),
        }
    }
}

/// Admission-control state of one live tenant connection.
struct TenantSlot {
    /// A clone of the tenant's source handle — `pending()` is the tenant's
    /// un-pumped backlog, which the global-pressure sum reads. Taken (set to
    /// `None`) at teardown so the channel can exhaust while the slot itself
    /// keeps blocking re-registration until the pump has fully drained.
    handle: Option<NetSourceHandle>,
    /// Set when the global cap shed this tenant; cleared by its own reader
    /// once pressure drops back under the cap.
    shed: Arc<AtomicBool>,
    /// Connection sequence number — lower = older = first to be shed.
    seq: u64,
}

/// The per-tenant state that outlives any one connection: the journal of
/// every admitted command, the count of decisions streamed back so far, and
/// whether a crashed pump is currently replaying.
///
/// Created on the tenant's first connection; removed only by an orderly
/// `Close` (which ends the journaled identity) — an unclean disconnect
/// leaves the ledger in place so the next connection can resume against it.
struct TenantLedger {
    journal: EventJournal,
    /// Client commands (events *and* advances) admitted by the reader,
    /// cumulative across resumed connections. This — not the journal's
    /// record count — is what `ResumeAck` reports: the journal also holds
    /// service-generated backpressure-flush advances, which the client
    /// never sent and must not count against its command log.
    admitted_commands: AtomicU64,
    /// Decisions actually written towards the client, cumulative across
    /// resumed connections. A restarted pump skips exactly this many
    /// replayed decisions (or the client-reported `Resume` count after a
    /// reconnect).
    decisions_streamed: Arc<AtomicU64>,
    /// Set by the pump supervisor while a journal replay is in flight; the
    /// reader answers events with [`RetryReason::Recovering`] meanwhile.
    recovering: AtomicBool,
}

/// State shared by the acceptor and every connection/pump thread.
struct Shared {
    cfg: NetConfig,
    obs: MetricsRegistry,
    live_connections: AtomicUsize,
    conn_seq: AtomicU64,
    tenants: Mutex<BTreeMap<String, TenantSlot>>,
    ledgers: Mutex<BTreeMap<String, Arc<TenantLedger>>>,
    stop: AtomicBool,
}

impl Shared {
    /// Summed un-pumped backlog across every live tenant.
    fn global_pending(&self) -> usize {
        let tenants = self.tenants.lock().expect("tenant registry poisoned");
        tenants
            .values()
            .map(|t| t.handle.as_ref().map_or(0, NetSourceHandle::pending))
            .sum()
    }

    /// Marks the stalest (oldest-connection) un-shed tenant for shedding.
    fn shed_stalest(&self) {
        let tenants = self.tenants.lock().expect("tenant registry poisoned");
        if tenants.values().any(|t| t.shed.load(Ordering::SeqCst)) {
            return; // one sacrifice at a time; re-evaluated as pressure persists
        }
        if let Some(stalest) = tenants
            .values()
            .filter(|t| t.handle.is_some())
            .min_by_key(|t| t.seq)
        {
            stalest.shed.store(true, Ordering::SeqCst);
        }
    }

    /// The tenant's ledger, created on first use.
    fn ledger_for(&self, tenant: &str) -> Arc<TenantLedger> {
        let mut ledgers = self.ledgers.lock().expect("ledger registry poisoned");
        Arc::clone(ledgers.entry(tenant.to_string()).or_insert_with(|| {
            Arc::new(TenantLedger {
                journal: EventJournal::in_memory(),
                admitted_commands: AtomicU64::new(0),
                decisions_streamed: Arc::new(AtomicU64::new(0)),
                recovering: AtomicBool::new(false),
            })
        }))
    }
}

/// Handles to the obs counters a connection touches per frame.
struct ConnMetrics {
    frames_in: Counter,
    frames_out: Counter,
    rejected: Counter,
    ingest_seconds: Histogram,
    tenant_frames_in: Counter,
    tenant_rejected: Counter,
}

impl ConnMetrics {
    fn for_tenant(obs: &MetricsRegistry, tenant: &str) -> ConnMetrics {
        ConnMetrics {
            frames_in: obs.counter("net.frames_in"),
            frames_out: obs.counter("net.frames_out"),
            rejected: obs.counter("net.rejected_admission"),
            ingest_seconds: obs.histogram("net.ingest_seconds"),
            tenant_frames_in: obs.counter(&format!("net.tenant.{tenant}.frames_in")),
            tenant_rejected: obs.counter(&format!("net.tenant.{tenant}.rejected")),
        }
    }
}

/// The socket's write half, shared between the reader (errors, retry-afters)
/// and the pump's sink (decisions), so frames never interleave mid-frame.
type SharedWriter = Arc<Mutex<TcpStream>>;

/// Every spawned connection thread plus a clone of its socket's read half,
/// kept so [`NetServer::shutdown`] can unblock a parked reader and join it.
type WorkerList = Arc<Mutex<Vec<(JoinHandle<()>, TcpStream)>>>;

/// Writes one frame, counting it; write failures (client already gone) are
/// reported but must not kill the session — the pump still drains and the
/// totals still land in the obs registry.
fn send(writer: &SharedWriter, frames_out: &Counter, frame: &Frame) -> bool {
    let mut stream = writer.lock().expect("connection writer poisoned");
    let ok = write_frame(&mut *stream, frame).is_ok();
    if ok {
        frames_out.inc();
    }
    ok
}

/// The routing [`DecisionSink`]: encodes every decision of one tenant's
/// session as a frame on that tenant's own connection. The streamed count
/// lives in the tenant's ledger (not the sink) so it survives pump restarts
/// and reconnects — it is exactly the resume skip for the next incarnation.
///
/// The ledger count is a stream *position* (`base + emitted`), not a write
/// counter: after a reconnect resumes below the old high-water mark, the
/// re-streamed span must not be double-counted, so each emit stores its
/// absolute index rather than incrementing.
struct FrameSink {
    writer: SharedWriter,
    frames_out: Counter,
    tenant_decisions: Counter,
    streamed: Arc<AtomicU64>,
    /// The skip this incarnation opened with — decisions `0..base` were
    /// already delivered and are being suppressed by the wrapping
    /// [`SkipSink`].
    base: u64,
    /// Decisions this incarnation has written past `base`.
    emitted: u64,
    undeliverable: u64,
}

impl DecisionSink for FrameSink {
    fn emit(&mut self, decision: Decision) {
        self.emitted += 1;
        self.streamed
            .store(self.base + self.emitted, Ordering::SeqCst);
        self.tenant_decisions.inc();
        if !send(
            &self.writer,
            &self.frames_out,
            &Frame::from_decision(&decision),
        ) {
            self.undeliverable += 1;
        }
    }
}

/// A running TCP front-end. Bound to a loopback address; dropped or
/// [`shutdown`](NetServer::shutdown) servers join every thread they spawned.
pub struct NetServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    workers: WorkerList,
}

impl NetServer {
    /// Binds `127.0.0.1:0` (an ephemeral loopback port — this front-end is
    /// CI-testable without real network access) and starts the acceptor.
    pub fn bind(cfg: NetConfig) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            cfg,
            obs: MetricsRegistry::new(),
            live_connections: AtomicUsize::new(0),
            conn_seq: AtomicU64::new(0),
            tenants: Mutex::new(BTreeMap::new()),
            ledgers: Mutex::new(BTreeMap::new()),
            stop: AtomicBool::new(false),
        });
        let workers: WorkerList = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let shared = Arc::clone(&shared);
            let workers = Arc::clone(&workers);
            std::thread::spawn(move || accept_loop(&listener, &shared, &workers))
        };
        Ok(NetServer {
            addr,
            shared,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound loopback address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The server's observability registry (`net.*` counters, per-tenant
    /// counters, the ingest-latency histogram, plus every session's engine
    /// and planner metrics).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.shared.obs
    }

    /// Live connections being served right now.
    pub fn connections(&self) -> usize {
        self.shared.live_connections.load(Ordering::SeqCst)
    }

    /// Stops accepting, unblocks and joins every connection thread, and
    /// joins the acceptor. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the acceptor's `accept` with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let workers = std::mem::take(&mut *self.workers.lock().expect("worker list poisoned"));
        for (handle, stream) in workers {
            // Unblocks a reader parked in `read_exact` on a live client.
            let _ = stream.shutdown(Shutdown::Both);
            let _ = handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, workers: &WorkerList) {
    let connections_gauge = shared.obs.gauge("net.connections");
    let frames_out = shared.obs.counter("net.frames_out");
    for stream in listener.incoming() {
        if shared.stop.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if shared.live_connections.load(Ordering::SeqCst) >= shared.cfg.max_connections {
            // Graceful degradation at the cap: tell the client when to come
            // back instead of silently resetting the connection.
            shared.obs.counter("net.rejected_admission").inc();
            let mut stream = stream;
            if write_frame(
                &mut stream,
                &Frame::RetryAfter {
                    seconds: shared.cfg.retry_after_secs,
                    reason: RetryReason::ConnectionCap,
                },
            )
            .is_ok()
            {
                frames_out.inc();
            }
            // Closing outright can race the client's in-flight Hello: its
            // unread bytes would turn the close into an RST, which may
            // discard the buffered RetryAfter before the client reads it.
            // Instead FIN the write half and drain the client briefly off
            // the acceptor thread, so the frame stays deliverable.
            let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(1)));
            let _ = stream.shutdown(Shutdown::Write);
            std::thread::spawn(move || {
                let mut sink = [0u8; 256];
                while matches!(std::io::Read::read(&mut stream, &mut sink), Ok(n) if n > 0) {}
            });
            continue;
        }
        let n = shared.live_connections.fetch_add(1, Ordering::SeqCst) + 1;
        connections_gauge.set(n as i64);
        let read_half = match stream.try_clone() {
            Ok(clone) => clone,
            Err(_) => {
                shared.live_connections.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
        };
        let handle = {
            let shared = Arc::clone(shared);
            std::thread::spawn(move || {
                connection_main(&shared, stream);
                let left = shared.live_connections.fetch_sub(1, Ordering::SeqCst) - 1;
                shared.obs.gauge("net.connections").set(left as i64);
            })
        };
        workers
            .lock()
            .expect("worker list poisoned")
            .push((handle, read_half));
    }
}

/// Reads and validates the handshake. Answers on the socket itself on
/// failure and returns `None` (the connection is then closed).
fn handshake(
    shared: &Shared,
    reader: &mut BufReader<TcpStream>,
    writer: &SharedWriter,
    frames_out: &Counter,
) -> Option<String> {
    let refuse = |code, message: &str| {
        send(
            writer,
            frames_out,
            &Frame::Error {
                code,
                message: message.to_string(),
            },
        );
        None
    };
    let frame = match read_frame(reader) {
        Ok(frame) => frame,
        Err(e) if e.is_clean_eof() => return None, // probe connection, no Hello
        Err(_) => return refuse(ErrorCode::BadHello, "first frame was not a Hello"),
    };
    let Frame::Hello {
        version,
        tenant,
        token,
    } = frame
    else {
        return refuse(ErrorCode::BadHello, "first frame was not a Hello");
    };
    if version != crate::wire::PROTOCOL_VERSION {
        return refuse(
            ErrorCode::VersionMismatch,
            &format!(
                "protocol version {version} unsupported (server speaks {})",
                crate::wire::PROTOCOL_VERSION
            ),
        );
    }
    if tenant.is_empty() || tenant.len() > 64 || !tenant.bytes().all(|b| b.is_ascii_graphic()) {
        return refuse(
            ErrorCode::BadHello,
            "tenant name must be 1..=64 printable ASCII bytes",
        );
    }
    if let Some(expected) = &shared.cfg.auth_token {
        if &token != expected {
            return refuse(ErrorCode::AuthFailed, "bad auth token");
        }
    }
    Some(tenant)
}

/// How a connection's frame stream ended, which decides the pump's fate:
/// an orderly `Close` drains the session and ends the tenant's journaled
/// identity; anything else preserves the ledger for a later resume.
#[derive(PartialEq)]
enum StreamEnd {
    Orderly,
    Unclean,
}

fn connection_main(shared: &Arc<Shared>, stream: TcpStream) {
    let frames_out = shared.obs.counter("net.frames_out");
    let writer: SharedWriter = match stream.try_clone() {
        Ok(clone) => Arc::new(Mutex::new(clone)),
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);

    let Some(tenant) = handshake(shared, &mut reader, &writer, &frames_out) else {
        return;
    };

    // Register the tenant: one live connection per tenant name. A slot with
    // `handle: None` is a previous connection still draining its pump; that
    // refusal is retryable, so it answers TenantBusy like a true duplicate.
    let (handle, source) = NetSource::channel();
    let seq = shared.conn_seq.fetch_add(1, Ordering::SeqCst);
    let shed = Arc::new(AtomicBool::new(false));
    {
        let mut tenants = shared.tenants.lock().expect("tenant registry poisoned");
        if tenants.contains_key(&tenant) {
            send(
                &writer,
                &frames_out,
                &Frame::Error {
                    code: ErrorCode::TenantBusy,
                    message: format!("tenant {tenant} already has a live connection"),
                },
            );
            return;
        }
        tenants.insert(
            tenant.clone(),
            TenantSlot {
                handle: Some(handle.clone()),
                shed: Arc::clone(&shed),
                seq,
            },
        );
    }
    let ledger = shared.ledger_for(&tenant);
    let metrics = ConnMetrics::for_tenant(&shared.obs, &tenant);
    send(
        &writer,
        &frames_out,
        &Frame::HelloAck {
            version: crate::wire::PROTOCOL_VERSION,
        },
    );

    // Resume arming: the pump's decision skip must be fixed before it opens,
    // so peek the first post-handshake frame. A `Resume` carries the decision
    // count the client actually received and is answered with the admitted
    // command count (quiescent here — no pump or reader is running for this
    // tenant); anything else falls back to the server-side streamed count
    // and is re-processed by the read loop below.
    let initial_admitted = ledger.admitted_commands.load(Ordering::SeqCst);
    let (skip, stashed) = match read_frame(&mut reader) {
        Ok(Frame::Resume { decisions_seen }) => {
            metrics.frames_in.inc();
            metrics.tenant_frames_in.inc();
            send(
                &writer,
                &frames_out,
                &Frame::ResumeAck {
                    events_ingested: initial_admitted,
                },
            );
            (decisions_seen, None)
        }
        first => (
            ledger.decisions_streamed.load(Ordering::SeqCst),
            Some(first),
        ),
    };

    // The pump: this tenant's whole dispatch stack, fed by the channel and
    // restarted from the journal by its supervisor if it panics.
    let orderly = Arc::new(AtomicBool::new(false));
    let pump = {
        let shared = Arc::clone(shared);
        let writer = Arc::clone(&writer);
        let ledger = Arc::clone(&ledger);
        let orderly = Arc::clone(&orderly);
        let tenant = tenant.clone();
        let source = SharedSource::new(source);
        std::thread::spawn(move || {
            pump_main(&shared, &writer, &ledger, &orderly, source, &tenant, skip)
        })
    };

    let end = read_loop(
        shared,
        &mut reader,
        &writer,
        &handle,
        &shed,
        &metrics,
        &ledger,
        stashed,
        initial_admitted,
    );

    // End of stream. Drop every sender clone so the channel exhausts and the
    // pump can finish — but keep the slot registered (handle: None) until the
    // pump has drained, so a racing reconnect gets a retryable TenantBusy
    // instead of a second pump over the same journal.
    if end == StreamEnd::Orderly {
        orderly.store(true, Ordering::SeqCst);
    }
    if let Some(slot) = shared
        .tenants
        .lock()
        .expect("tenant registry poisoned")
        .get_mut(&tenant)
    {
        slot.handle = None;
    }
    handle.close();
    let _ = pump.join();
    if end == StreamEnd::Orderly {
        // Orderly close ends the journaled identity: a future connection
        // under this tenant name starts a fresh session from record zero.
        shared
            .ledgers
            .lock()
            .expect("ledger registry poisoned")
            .remove(&tenant);
    }
    shared
        .tenants
        .lock()
        .expect("tenant registry poisoned")
        .remove(&tenant);
    // The shutdown worker list still holds a clone of this socket, so
    // dropping our handles alone never FINs the peer — do it explicitly.
    // Orderly closes have already flushed their `Closed` frame (FIN queues
    // behind sent data); unclean ends have no terminal frame at all, and a
    // client (or a chaos proxy's byte copier) still reading would otherwise
    // stall silently instead of seeing EOF.
    let _ = writer
        .lock()
        .expect("connection writer poisoned")
        .shutdown(Shutdown::Both);
}

/// Consecutive no-progress recoveries tolerated before the pump gives up.
const MAX_STALLED_RECOVERIES: u32 = 3;

/// The pump supervisor: runs [`pump_once`] under `catch_unwind`, and on a
/// panic replays the tenant's journal into a fresh service with the already
/// streamed decision prefix suppressed. Gives up (typed [`ErrorCode::PumpFailed`])
/// only after [`MAX_STALLED_RECOVERIES`] consecutive restarts with no new
/// journal records — a pump that keeps progressing may recover any number of
/// injected faults.
#[allow(clippy::too_many_arguments)]
fn pump_main(
    shared: &Arc<Shared>,
    writer: &SharedWriter,
    ledger: &Arc<TenantLedger>,
    orderly: &Arc<AtomicBool>,
    source: SharedSource<NetSource>,
    tenant: &str,
    mut skip: u64,
) {
    let frames_out = shared.obs.counter("net.frames_out");
    let recoveries = shared.obs.counter("net.pump_recoveries");
    let tenant_recoveries = shared
        .obs
        .counter(&format!("net.tenant.{tenant}.recoveries"));
    let mut kills: Vec<u64> = shared
        .cfg
        .pump_kills
        .iter()
        .filter(|(t, _)| t == tenant)
        .map(|(_, n)| *n)
        .collect();
    let mut attempt: u32 = 0;
    let mut stalled: u32 = 0;
    let mut last_records = ledger.journal.record_count();
    loop {
        let run = catch_unwind(AssertUnwindSafe(|| {
            pump_once(
                shared,
                writer,
                ledger,
                orderly,
                source.clone(),
                tenant,
                &mut kills,
                skip,
                attempt,
            );
        }));
        match run {
            Ok(()) => return,
            Err(_) => {
                // The dead service took nothing with it: admitted commands
                // live in the journal (ingested) or the shared channel (not
                // yet pumped), and the streamed count sits in the ledger.
                ledger.recovering.store(true, Ordering::SeqCst);
                recoveries.inc();
                tenant_recoveries.inc();
                let records = ledger.journal.record_count();
                if records == last_records {
                    stalled += 1;
                } else {
                    stalled = 0;
                    last_records = records;
                }
                if stalled >= MAX_STALLED_RECOVERIES {
                    // Leave `recovering` set: the reader keeps answering this
                    // tenant's events with a typed retry-after instead of a
                    // silently dead pump, and the ledger survives for a
                    // reconnect to resume against.
                    send(
                        writer,
                        &frames_out,
                        &Frame::Error {
                            code: ErrorCode::PumpFailed,
                            message: format!(
                                "tenant pump failed {stalled} consecutive recovery attempts"
                            ),
                        },
                    );
                    // Commands still queued in the channel will never reach
                    // the journal — drain and un-count them so a later
                    // `ResumeAck` tells the client to resend exactly what was
                    // lost. (Blocks until the reader closes the handle, which
                    // it does before joining this thread.)
                    let mut drain = source.clone();
                    while let SourcePoll::Ready(..) | SourcePoll::Wait(_) = drain.poll() {
                        ledger.admitted_commands.fetch_sub(1, Ordering::SeqCst);
                    }
                    return;
                }
                skip = ledger.decisions_streamed.load(Ordering::SeqCst);
                attempt += 1;
            }
        }
    }
}

/// One pump incarnation: replay the journal (a no-op on the first run of a
/// fresh tenant), then pump the shared channel to exhaustion. Only an
/// orderly close drains the session and reports [`Frame::Closed`]; an
/// unclean end drops the service un-finished so no decision is emitted at a
/// dead client.
#[allow(clippy::too_many_arguments)]
fn pump_once(
    shared: &Arc<Shared>,
    writer: &SharedWriter,
    ledger: &Arc<TenantLedger>,
    orderly: &Arc<AtomicBool>,
    source: SharedSource<NetSource>,
    tenant: &str,
    kills: &mut Vec<u64>,
    skip: u64,
    attempt: u32,
) {
    let mut runner =
        AdaptiveRunner::new(shared.cfg.assign, shared.cfg.policy).with_metrics(shared.obs.clone());
    if shared.cfg.policy == PolicyKind::DataWa {
        // with_tvf consumes the TVF and the type is not Clone, so every pump
        // rebuilds it from the shared (hidden, seed) pair — deterministic,
        // hence still bit-equal to a direct run.
        runner = runner.with_tvf(TaskValueFunction::new(
            shared.cfg.tvf_hidden,
            shared.cfg.tvf_seed,
        ));
    }
    let mut forecast = StaticForecast::default();
    let sink = SkipSink::new(
        FrameSink {
            writer: Arc::clone(writer),
            frames_out: shared.obs.counter("net.frames_out"),
            tenant_decisions: shared
                .obs
                .counter(&format!("net.tenant.{tenant}.decisions")),
            streamed: Arc::clone(&ledger.decisions_streamed),
            base: skip,
            emitted: 0,
            undeliverable: 0,
        },
        skip,
    );
    // Restarts time the journal replay into `net.recovery_seconds`; the
    // first incarnation of a fresh tenant replays nothing and records
    // nothing.
    let recovery_seconds = shared.obs.histogram("net.recovery_seconds");
    let recovery_span = (attempt > 0).then(|| recovery_seconds.span());
    let mut service = DispatchService::open_recovered(
        &runner,
        &mut forecast,
        source,
        sink,
        shared.cfg.service,
        ledger.journal.clone(),
    )
    .expect("tenant journal replays cleanly");
    drop(recovery_span);
    ledger.recovering.store(false, Ordering::SeqCst);
    loop {
        if let Some(at) = kills
            .iter()
            .position(|n| *n == ledger.journal.event_count())
        {
            kills.remove(at);
            // datawa-lint: allow(panic-in-service-path) -- deterministic chaos injection, caught by the pump supervisor
            panic!("chaos: injected pump kill for tenant {tenant}");
        }
        if service.pump() == PumpStatus::SourceDrained {
            break;
        }
    }
    if orderly.load(Ordering::SeqCst) {
        let (outcome, _stats, sink) = service.finish();
        let _ = sink; // undeliverable count dies with the connection
        send(
            writer,
            &shared.obs.counter("net.frames_out"),
            &Frame::Closed {
                assigned: outcome.run.assigned_tasks as u64,
                decisions: ledger.decisions_streamed.load(Ordering::SeqCst),
                events: outcome.stats.events_processed as u64,
                planning_calls: outcome.run.planning_calls as u64,
            },
        );
    }
}

/// Decodes frames and applies admission until the stream ends.
///
/// Refusals are sticky: the first refused command fixes the refusal reason
/// for the rest of the connection, so the admitted sequence is always an
/// exact prefix of what the client sent — the invariant count-based resume
/// relies on. `stashed` carries the first post-handshake frame when it was
/// not a `Resume` (the connection peeks it to arm the pump's skip).
#[allow(clippy::too_many_arguments)]
fn read_loop(
    shared: &Shared,
    reader: &mut BufReader<TcpStream>,
    writer: &SharedWriter,
    handle: &NetSourceHandle,
    shed: &Arc<AtomicBool>,
    metrics: &ConnMetrics,
    ledger: &Arc<TenantLedger>,
    mut stashed: Option<Result<Frame, WireError>>,
    mut admitted: u64,
) -> StreamEnd {
    // Times must be non-decreasing per connection; an AdvanceTo moves the
    // session watermark, so a later event below it would panic the pump.
    let mut watermark = f64::NEG_INFINITY;
    // Once set, every later command answers with this same retry-after.
    let mut refusing: Option<RetryReason> = None;
    let protocol_error = |writer: &SharedWriter, code, message: String| {
        send(writer, &metrics.frames_out, &Frame::Error { code, message });
    };
    let refuse = |writer: &SharedWriter, reason: RetryReason| {
        metrics.rejected.inc();
        metrics.tenant_rejected.inc();
        send(
            writer,
            &metrics.frames_out,
            &Frame::RetryAfter {
                seconds: shared.cfg.retry_after_secs,
                reason,
            },
        );
    };
    loop {
        let frame = match stashed.take().unwrap_or_else(|| read_frame(reader)) {
            Ok(frame) => frame,
            Err(WireError::Io(_)) => return StreamEnd::Unclean, // disconnect
            Err(e) => {
                // Junk bytes, oversized prefix, unknown type: answer with a
                // typed error, then close this connection only.
                protocol_error(writer, ErrorCode::Protocol, e.to_string());
                return StreamEnd::Unclean;
            }
        };
        metrics.frames_in.inc();
        metrics.tenant_frames_in.inc();
        match frame {
            Frame::Close => return StreamEnd::Orderly,
            Frame::Resume { .. } => {
                // Mid-stream Resume is a sync ping: the answer counts every
                // command admitted so far (queued refusals for earlier
                // commands are already ordered before it on the wire), which
                // tells the client exactly where its log prefix ends.
                send(
                    writer,
                    &metrics.frames_out,
                    &Frame::ResumeAck {
                        events_ingested: admitted,
                    },
                );
            }
            Frame::AdvanceTo { time } => {
                if let Some(reason) = refusing {
                    refuse(writer, reason);
                    continue;
                }
                if ledger.recovering.load(Ordering::SeqCst) {
                    refusing = Some(RetryReason::Recovering);
                    refuse(writer, RetryReason::Recovering);
                    continue;
                }
                if time.0 < watermark {
                    protocol_error(
                        writer,
                        ErrorCode::BadEvent,
                        format!("AdvanceTo {} is behind watermark {watermark}", time.0),
                    );
                    return StreamEnd::Unclean;
                }
                watermark = time.0;
                if handle.push_advance(time).is_err() {
                    return StreamEnd::Unclean; // pump is gone
                }
                admitted += 1;
                ledger.admitted_commands.store(admitted, Ordering::SeqCst);
            }
            event_frame @ (Frame::TaskArrival { .. }
            | Frame::WorkerOnline { .. }
            | Frame::TaskExpiration { .. }
            | Frame::WorkerOffline { .. }
            | Frame::ReplanTick { .. }) => {
                let _ingest_span = metrics.ingest_seconds.span();
                if let Some(reason) = refusing {
                    refuse(writer, reason);
                    continue;
                }
                if let Frame::TaskArrival { task, .. } = &event_frame {
                    if !task.is_well_formed() {
                        protocol_error(
                            writer,
                            ErrorCode::BadEvent,
                            format!("malformed task {}", task.id),
                        );
                        return StreamEnd::Unclean;
                    }
                }
                if let Frame::WorkerOnline { worker, .. } = &event_frame {
                    if !worker.is_well_formed() {
                        protocol_error(
                            writer,
                            ErrorCode::BadEvent,
                            format!("malformed worker {}", worker.id),
                        );
                        return StreamEnd::Unclean;
                    }
                }
                let (time, event) = event_frame.into_event().expect("matched an event frame");
                if time.0 < watermark {
                    protocol_error(
                        writer,
                        ErrorCode::BadEvent,
                        format!("event at {} is behind watermark {watermark}", time.0),
                    );
                    return StreamEnd::Unclean;
                }
                // Admission. A replaying pump refuses first (typed signal,
                // not a dead socket); then global pressure — under it the
                // stalest tenant is shed, and a shed tenant stays refused
                // until the total backlog is back under the cap — then the
                // per-tenant quota.
                if shared.global_pending() >= shared.cfg.global_pending_cap {
                    shared.shed_stalest();
                } else {
                    shed.store(false, Ordering::SeqCst);
                }
                let reason = if ledger.recovering.load(Ordering::SeqCst) {
                    Some(RetryReason::Recovering)
                } else if shed.load(Ordering::SeqCst) {
                    Some(RetryReason::GlobalOverload)
                } else if handle.pending() >= shared.cfg.tenant_pending_quota {
                    Some(RetryReason::TenantQuota)
                } else {
                    None
                };
                if let Some(reason) = reason {
                    refusing = Some(reason);
                    refuse(writer, reason);
                    continue;
                }
                watermark = time.0;
                if handle.push_event(time, event).is_err() {
                    return StreamEnd::Unclean;
                }
                admitted += 1;
                ledger.admitted_commands.store(admitted, Ordering::SeqCst);
            }
            Frame::Hello { .. } => {
                protocol_error(
                    writer,
                    ErrorCode::Protocol,
                    "Hello after handshake".to_string(),
                );
                return StreamEnd::Unclean;
            }
            _server_only => {
                protocol_error(
                    writer,
                    ErrorCode::Protocol,
                    "client sent a server-only frame".to_string(),
                );
                return StreamEnd::Unclean;
            }
        }
    }
}
