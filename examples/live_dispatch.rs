//! Live dispatch through the facade: a paced hotspot-drift workload pumped
//! through the `datawa-service` loop, decisions collected as they are made,
//! with mid-stream snapshots printed while the run is still in flight.
//!
//! ```text
//! cargo run --release --example live_dispatch
//! ```

use datawa::prelude::*;

fn main() {
    let spec = ScenarioSpec::small().with_tasks(400).with_workers(30);
    let workload = HotspotDrift::new(spec).generate();
    let runner = AdaptiveRunner::new(AssignConfig::default(), PolicyKind::Dta);

    let mut forecast = StaticForecast::default();
    let mut service = DispatchService::open(
        &runner,
        &mut forecast,
        LiveSource::new(&workload, 20.0),
        CollectingSink::new(),
        ServiceConfig::default(),
    );

    println!(
        "pumping {} arrivals through the live session…\n",
        workload.arrival_count()
    );
    let mut pumps = 0usize;
    while service.pump() != PumpStatus::SourceDrained {
        pumps += 1;
        if pumps.is_multiple_of(400) {
            let snap = service.snapshot();
            println!(
                "  t={:7.1}s  open tasks={:3}  available workers={:2}  assigned so far={:3}",
                snap.now.0, snap.open_tasks, snap.available_workers, snap.assigned_tasks
            );
        }
    }
    let (outcome, stats, sink) = service.finish();

    println!(
        "\nsource: {} ingested, {} quiet-period waits",
        stats.ingested, stats.waits
    );
    println!(
        "outcome: {} of {} tasks assigned, {} planning calls",
        outcome.run.assigned_tasks,
        workload.tasks.len(),
        outcome.run.planning_calls
    );
    let expired = sink
        .decisions()
        .iter()
        .filter(|d| matches!(d, Decision::TaskExpired { .. }))
        .count();
    println!(
        "decisions: {} dispatches, {} tasks expired unserved (streamed, not post-hoc)",
        sink.dispatches(),
        expired
    );
    assert_eq!(sink.dispatches(), outcome.run.assigned_tasks);
}
