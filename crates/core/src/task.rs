//! Spatial tasks (Definition 1).

use crate::location::Location;
use crate::time::{Duration, TimeInterval, Timestamp};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a spatial task. Dense, assigned by the workload generator or
/// the [`crate::store::TaskStore`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TaskId(pub u32);

impl TaskId {
    /// Index form for direct vector addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A spatial task `s = (l, p, e)` (Definition 1): a location where the task
/// must be performed, a publication time and an expiration time.
///
/// The paper's single-task-assignment mode means every task is performed at
/// most once by at most one worker; that bookkeeping lives in
/// [`crate::assignment::Assignment`], not here.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Task {
    /// Task identifier.
    pub id: TaskId,
    /// Location `s.l` where the task is performed.
    pub location: Location,
    /// Publication time `s.p`: the instant the task becomes known/assignable.
    pub publication: Timestamp,
    /// Expiration time `s.e`: the task must be *reached* strictly before this.
    pub expiration: Timestamp,
}

impl Task {
    /// Creates a new task. Panics (debug builds) if the expiration precedes the
    /// publication.
    pub fn new(
        id: TaskId,
        location: Location,
        publication: Timestamp,
        expiration: Timestamp,
    ) -> Task {
        debug_assert!(
            expiration.0 >= publication.0,
            "task {id}: expiration {expiration} precedes publication {publication}"
        );
        Task {
            id,
            location,
            publication,
            expiration,
        }
    }

    /// The task's valid time `e − p` (the Table III sweep axis).
    #[inline]
    pub fn valid_time(&self) -> Duration {
        self.expiration - self.publication
    }

    /// The lifetime interval `[p, e)` during which the task can be served.
    #[inline]
    pub fn lifetime(&self) -> TimeInterval {
        TimeInterval::new(self.publication, self.expiration)
    }

    /// Whether the task is still assignable at time `now`: already published
    /// and not yet expired.
    #[inline]
    pub fn is_open_at(&self, now: Timestamp) -> bool {
        now.0 >= self.publication.0 && now.0 < self.expiration.0
    }

    /// Whether the task has expired at time `now`.
    #[inline]
    pub fn is_expired_at(&self, now: Timestamp) -> bool {
        now.0 >= self.expiration.0
    }

    /// Whether all fields are finite and the lifetime is non-degenerate.
    pub fn is_well_formed(&self) -> bool {
        self.location.is_finite()
            && self.publication.is_finite()
            && self.expiration.is_finite()
            && self.expiration.0 >= self.publication.0
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{} p={:.1} e={:.1}",
            self.id, self.location, self.publication.0, self.expiration.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn task(p: f64, e: f64) -> Task {
        Task::new(
            TaskId(1),
            Location::new(1.0, 1.0),
            Timestamp(p),
            Timestamp(e),
        )
    }

    #[test]
    fn valid_time_is_expiration_minus_publication() {
        assert_eq!(task(2.0, 8.0).valid_time(), Duration(6.0));
    }

    #[test]
    fn openness_window_is_half_open() {
        let t = task(2.0, 8.0);
        assert!(!t.is_open_at(Timestamp(1.9)));
        assert!(t.is_open_at(Timestamp(2.0)));
        assert!(t.is_open_at(Timestamp(7.9)));
        assert!(!t.is_open_at(Timestamp(8.0)));
        assert!(t.is_expired_at(Timestamp(8.0)));
        assert!(!t.is_expired_at(Timestamp(7.9)));
    }

    #[test]
    fn well_formedness_rejects_nan() {
        let mut t = task(2.0, 8.0);
        assert!(t.is_well_formed());
        t.location = Location::new(f64::NAN, 0.0);
        assert!(!t.is_well_formed());
    }

    #[test]
    fn display_is_compact() {
        let t = task(1.0, 4.0);
        assert_eq!(format!("{}", t.id), "s1");
        assert!(format!("{t}").contains("s1"));
    }
}
