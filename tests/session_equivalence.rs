//! The acceptance bar of the session API redesign: ingesting a workload
//! event-by-event through an open [`Session`] with a channel-backed decision
//! sink must yield bitwise-identical totals to the batch `run_workload`
//! wrapper, for every policy family on every built-in scenario generator —
//! and the decisions streamed mid-run must reconcile exactly with the
//! end-of-run outcome.

use datawa::prelude::*;
use std::sync::mpsc;

fn runner(policy: PolicyKind) -> AdaptiveRunner {
    let r = AdaptiveRunner::new(AssignConfig::default(), policy);
    if policy == PolicyKind::DataWa {
        // Identical (seeded) TVF on both sides keeps the comparison exact.
        r.with_tvf(TaskValueFunction::new(8, 7))
    } else {
        r
    }
}

/// Feeds `workload` one arrival at a time — ingest, then advance to that
/// instant, exactly what a live front-end does — streaming decisions over a
/// channel, and returns the outcome plus every received decision.
fn run_event_by_event(
    workload: &Workload,
    policy: PolicyKind,
    config: EngineConfig,
) -> (EngineOutcome, Vec<Decision>) {
    let r = runner(policy);
    let (tx, rx) = mpsc::channel();
    let mut sink = ChannelSink::new(tx);
    let mut forecast = StaticForecast::default();
    let mut session = Session::open(&r, &mut forecast, config);
    // WorkloadSource hands out arrivals in the engine queue's deterministic
    // order (time, workers-before-tasks, FIFO).
    let mut source = WorkloadSource::new(workload);
    while let SourcePoll::Ready(time, event) = source.poll() {
        session
            .ingest(time, event)
            .expect("replay times are finite");
        session.advance_to(time, &mut sink);
    }
    let outcome = session.close(&mut sink);
    assert_eq!(sink.undeliverable(), 0);
    drop(sink);
    (outcome, rx.into_iter().collect())
}

/// Event-by-event session ingest equals the batch driver bit for bit: same
/// assignments, same per-worker counts, same planning instants, same engine
/// counters, for all four policies on all four scenarios.
#[test]
fn session_ingest_equals_batch_run_for_all_policies_and_scenarios() {
    let spec = ScenarioSpec::small().with_tasks(150).with_workers(12);
    for scenario in builtin_scenarios(spec) {
        let workload = scenario.generate();
        for policy in [
            PolicyKind::Greedy,
            PolicyKind::Fta,
            PolicyKind::Dta,
            PolicyKind::DataWa,
        ] {
            let batch = run_workload(&runner(policy), &workload, &[], EngineConfig::default());
            let (live, decisions) = run_event_by_event(&workload, policy, EngineConfig::default());

            let label = format!("{} on {}", policy.name(), scenario.name());
            assert_eq!(
                live.run.assigned_tasks, batch.run.assigned_tasks,
                "{label}: assigned totals diverged"
            );
            assert_eq!(
                live.run.per_worker, batch.run.per_worker,
                "{label}: per-worker counts diverged"
            );
            assert_eq!(live.run.planning_calls, batch.run.planning_calls, "{label}");
            assert_eq!(live.run.events, batch.run.events, "{label}");
            // Engine counters: everything except the queue high-water mark
            // (batch preloads every arrival, so its queue peaks at the full
            // workload; live ingest holds only in-flight lifecycle events —
            // that difference is the point of the API).
            let mut live_stats = live.stats;
            let mut batch_stats = batch.stats;
            assert!(
                live_stats.peak_queue_len <= batch_stats.peak_queue_len,
                "{label}"
            );
            live_stats.peak_queue_len = 0;
            batch_stats.peak_queue_len = 0;
            assert_eq!(live_stats, batch_stats, "{label}: engine counters diverged");

            // The streamed decisions reconcile with the outcome exactly.
            let dispatches = decisions.iter().filter(|d| d.is_dispatch()).count();
            assert_eq!(dispatches, live.run.assigned_tasks, "{label}");
            let expired = decisions
                .iter()
                .filter(|d| matches!(d, Decision::TaskExpired { .. }))
                .count();
            assert_eq!(expired, live.stats.expired_open, "{label}");
            for pair in decisions.windows(2) {
                assert!(
                    pair[0].at().0 <= pair[1].at().0,
                    "{label}: decisions out of time order"
                );
            }
        }
    }
}

/// The prediction-aware policy also replays identically through a session
/// when both drivers see the same predicted-task feed.
#[test]
fn session_ingest_equals_batch_run_with_predicted_tasks() {
    let spec = ScenarioSpec::small().with_tasks(150).with_workers(12);
    let workload = UniformBaseline::new(spec).generate();
    let predicted: Vec<PredictedTaskInput> = workload
        .tasks
        .iter()
        .step_by(9)
        .map(|t| PredictedTaskInput {
            location: t.location,
            publication: t.publication + Duration(90.0),
            expiration: t.expiration + Duration(90.0),
        })
        .collect();
    assert!(!predicted.is_empty());

    let r = runner(PolicyKind::DtaTp);
    let batch = run_workload(&r, &workload, &predicted, EngineConfig::default());

    let mut sink = CollectingSink::new();
    let mut forecast = StaticForecast::from_slice(&predicted);
    let mut session = Session::open(&r, &mut forecast, EngineConfig::default());
    let mut source = WorkloadSource::new(&workload);
    while let SourcePoll::Ready(time, event) = source.poll() {
        session.ingest(time, event).unwrap();
        session.advance_to(time, &mut sink);
    }
    let live = session.close(&mut sink);
    assert_eq!(live.run.assigned_tasks, batch.run.assigned_tasks);
    assert_eq!(live.run.per_worker, batch.run.per_worker);
    assert_eq!(sink.dispatches(), live.run.assigned_tasks);
}

/// With every event ingested up front, chunked `advance_to` calls (a session
/// advanced in slices of simulated time) also reproduce the batch driver —
/// including under purely time-driven re-planning, where tick instants must
/// land identically.
#[test]
fn chunked_advance_equals_batch_run_under_time_driven_planning() {
    let spec = ScenarioSpec::small().with_tasks(120).with_workers(10);
    let workload = HotspotDrift::new(spec).generate();
    let config = EngineConfig::ticked(45.0);
    let r = runner(PolicyKind::Dta);
    let batch = run_workload(&r, &workload, &[], config);

    let mut sink = CollectingSink::new();
    let mut forecast = StaticForecast::default();
    let mut session = Session::open(&r, &mut forecast, config);
    session.ingest_workload(&workload).unwrap();
    let end = workload.end_time();
    let mut t = 0.0;
    while t < end.0 {
        session.advance_to(Timestamp(t), &mut sink);
        t += 97.0; // deliberately incommensurate with the 45 s tick interval
    }
    let live = session.close(&mut sink);
    assert_eq!(live.run.assigned_tasks, batch.run.assigned_tasks);
    assert_eq!(live.run.per_worker, batch.run.per_worker);
    assert_eq!(live.run.planning_calls, batch.run.planning_calls);
    assert_eq!(live.stats.replan_ticks, batch.stats.replan_ticks);
}

/// The sharded engine, now session-per-shard internally, still reproduces
/// the unsharded engine exactly with a single shard (spot-check on top of
/// the unchanged sharding suite).
#[test]
fn single_shard_session_engine_still_matches_unsharded() {
    use datawa::core::location::BoundingBox;
    use datawa::geo::GridSpec;

    let spec = ScenarioSpec::small().with_tasks(150).with_workers(12);
    let workload = RushHourBurst::new(spec).generate();
    let area = BoundingBox::new(
        Location::new(0.0, 0.0),
        Location::new(spec.area_km, spec.area_km),
    );
    let map = ShardMap::new(UniformGrid::new(GridSpec::new(area, 8, 8)), 1);
    let plain = run_workload(
        &runner(PolicyKind::Dta),
        &workload,
        &[],
        EngineConfig::default(),
    );
    let sharded = run_workload_sharded(
        &runner(PolicyKind::Dta),
        &workload,
        &[],
        map,
        ShardedEngineConfig::default(),
    );
    assert_eq!(sharded.run.assigned_tasks, plain.run.assigned_tasks);
    assert_eq!(sharded.per_shard[0].per_worker, plain.run.per_worker);
    assert_eq!(sharded.run.planning_calls, plain.run.planning_calls);
}
