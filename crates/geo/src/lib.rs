//! # datawa-geo
//!
//! Spatial substrate for the DATA-WA reproduction: a uniform grid partition of
//! the study area (the paper's grid-based prediction regions, §III) and a
//! grid-bucketed spatial index used by the assignment layer to find reachable
//! tasks without scanning the whole task set.
//!
//! ```
//! use datawa_core::prelude::*;
//! use datawa_geo::{GridSpec, SpatialIndex, UniformGrid};
//!
//! let area = BoundingBox::new(Location::new(0.0, 0.0), Location::new(10.0, 10.0));
//! let grid = UniformGrid::new(GridSpec::new(area, 5, 5));
//! let cell = grid.cell_of(&Location::new(2.4, 7.9));
//! assert!(cell.index() < grid.cell_count());
//! ```

pub mod grid;
pub mod index;
pub mod shard;

pub use grid::{CellId, GridSpec, UniformGrid};
pub use index::SpatialIndex;
pub use shard::{ShardId, ShardMap};
