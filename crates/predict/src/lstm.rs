//! LSTM baseline predictor (§V-B.1 method i).
//!
//! One LSTM cell, shared by every grid cell, consumes the cell's history of
//! occurrence vectors; a fully connected head with a sigmoid produces the
//! probability of task occurrence in each ΔT bucket of the next window. The
//! model sees each region in isolation — it has no way to exploit demand
//! dependencies between regions, which is exactly the gap DDGNN closes.

use crate::series::SeriesExample;
use crate::stack_rows;
use crate::trainer::DemandPredictor;
use datawa_tensor::layers::{Dense, LstmCell};
use datawa_tensor::Var;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The LSTM baseline model.
pub struct LstmPredictor {
    cell: LstmCell,
    head: Dense,
}

impl LstmPredictor {
    /// Creates the model. `k` is the occurrence-vector width, `hidden` the
    /// LSTM state width.
    pub fn new(k: usize, hidden: usize, seed: u64) -> LstmPredictor {
        let mut rng = StdRng::seed_from_u64(seed);
        LstmPredictor {
            cell: LstmCell::new(k, hidden, &mut rng),
            head: Dense::new(hidden, k, &mut rng),
        }
    }
}

impl DemandPredictor for LstmPredictor {
    fn name(&self) -> &'static str {
        "LSTM"
    }

    fn parameters(&self) -> Vec<Var> {
        let mut p = self.cell.parameters();
        p.extend(self.head.parameters());
        p
    }

    fn forward(&self, example: &SeriesExample) -> Var {
        let mut rows = Vec::with_capacity(example.history.len());
        for history in &example.history {
            let x = Var::constant(history.clone());
            let h = self.cell.run_sequence(&x);
            rows.push(self.head.forward(&h).sigmoid());
        }
        stack_rows(&rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::{SeriesDataset, SeriesSpec};
    use crate::trainer::TrainingConfig;
    use datawa_core::Timestamp;
    use datawa_tensor::Matrix;

    fn periodic_dataset(cells: usize, k: usize, examples: usize) -> SeriesDataset {
        // A deterministic alternating pattern the LSTM can learn: the target
        // repeats the last history vector.
        let spec = SeriesSpec::new(Timestamp(0.0), 1.0, k, 3);
        let mut out = Vec::new();
        for e in 0..examples {
            let bit = |t: usize| if t.is_multiple_of(2) { 1.0 } else { 0.0 };
            let mut history = Vec::new();
            for _ in 0..cells {
                let mut h = Matrix::zeros(3, k);
                for row in 0..3 {
                    for j in 0..k {
                        h.set(row, j, bit(e + row + j));
                    }
                }
                history.push(h);
            }
            let mut target = Matrix::zeros(cells, k);
            let mut snapshot = Matrix::zeros(cells, k);
            for c in 0..cells {
                for j in 0..k {
                    target.set(c, j, bit(e + 3 + j));
                    snapshot.set(c, j, bit(e + 2 + j));
                }
            }
            out.push(crate::series::SeriesExample {
                history,
                snapshot,
                target,
                target_window: e + 3,
            });
        }
        SeriesDataset {
            spec,
            cells,
            examples: out,
        }
    }

    #[test]
    fn forward_produces_probabilities_of_the_right_shape() {
        let ds = periodic_dataset(4, 3, 2);
        let model = LstmPredictor::new(3, 8, 0);
        let out = model.predict(&ds.examples[0]);
        assert_eq!(out.shape(), (4, 3));
        assert!(out.data().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn training_improves_average_precision_on_a_learnable_pattern() {
        let ds = periodic_dataset(2, 2, 8);
        let (train, test) = ds.split(0.75);
        let mut model = LstmPredictor::new(2, 8, 1);
        let before = model.evaluate(&test).average_precision;
        model.train(
            &train,
            &TrainingConfig {
                epochs: 40,
                learning_rate: 0.02,
            },
        );
        let after = model.evaluate(&test).average_precision;
        assert!(
            after >= before,
            "training should not hurt AP on a deterministic pattern: before={before}, after={after}"
        );
        assert!(
            after > 0.6,
            "LSTM failed to learn the alternating pattern: AP={after}"
        );
    }
}
