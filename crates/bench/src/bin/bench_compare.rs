//! Regression gate over soak reports: compares the latest two numeric-tag
//! `BENCH_<n>.json` files and fails when replan latency regresses.
//!
//! ```text
//! bench_compare [--dir DIR]        # latest two BENCH_<n>.json under DIR
//! bench_compare --files OLD NEW    # explicit report pair
//! bench_compare --parity A B       # assignment parity instead of latency
//! ```
//!
//! Latency mode matches runs by `(scenario, threads)` — runs present in only
//! one report are skipped *and named* (`skip old-only …` / `skip new-only
//! …`), as are `forecast: "online"` rows (their event target and policy
//! differ from the grid's, so their latencies are a different population).
//! Two reports with no shared runs at all — e.g. a soak report next to a
//! service-bench report — gate nothing: every run is named as skipped and
//! the comparison passes vacuously. A matched run fails when
//! `new p50 > old p50 * 1.2 + 0.05 ms`; the additive floor keeps sub-0.1 ms
//! runs from tripping the gate on scheduler noise.
//!
//! Service-bench reports additionally carry an `ingest` histogram per run;
//! when **both** sides of a matched run have one, its `p95_ms` is gated by
//! the same 20%-plus-floor rule. Runs without it (soak reports, older
//! service reports) skip the ingest check silently — the gate never
//! invents a baseline.
//!
//! Parity mode (`--parity`) is the `DATAWA_INCREMENTAL=off` check: the two
//! reports must agree *exactly* on `assigned_tasks` and `planning_calls` for
//! every matched run — incremental replanning is required to be
//! output-invisible, so any drift is a correctness bug, not a regression.
//!
//! Prints `bench_compare_ok=1` on success; exits nonzero with a per-run
//! verdict table on failure.

use datawa_obs::JsonValue;
use std::process::exit;

/// Prints a diagnostic naming the offending file/arguments and exits with
/// status 2 (usage/data error, distinct from a genuine comparison failure).
fn die(msg: &str) -> ! {
    eprintln!("bench_compare: {msg}");
    exit(2);
}

/// Allowed relative p50 growth (20%) plus an absolute floor for runs whose
/// p50 is so small that relative noise dominates.
const MAX_RELATIVE_GROWTH: f64 = 1.2;
const ABSOLUTE_FLOOR_MS: f64 = 0.05;

struct RunKey {
    scenario: String,
    threads: u64,
    online: bool,
}

struct Run {
    key: RunKey,
    p50_ms: f64,
    /// `ingest.p95_ms` where the report has it (service-bench rows);
    /// `None` for soak reports, which have no ingest path.
    ingest_p95_ms: Option<f64>,
    assigned_tasks: u64,
    planning_calls: u64,
}

fn load_runs(path: &str) -> Vec<Run> {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        die(&format!(
            "cannot read {path}: {e} (expected a soak report; run `cargo run -p \
             datawa-bench --bin soak -- --tag <n>` to produce one)"
        ))
    });
    let parsed = JsonValue::parse(&text).unwrap_or_else(|e| {
        die(&format!(
            "{path} is not valid JSON ({e:?}); was the soak run interrupted mid-write?"
        ))
    });
    parsed
        .get("runs")
        .unwrap_or_else(|| die(&format!("{path} has no `runs` key; not a soak report")))
        .items()
        .iter()
        .enumerate()
        .map(|(i, run)| {
            let field = |name: &str| {
                run.get(name)
                    .and_then(JsonValue::as_u64)
                    .unwrap_or_else(|| die(&format!("{path}: run #{i} missing numeric `{name}`")))
            };
            Run {
                key: RunKey {
                    scenario: run
                        .get("scenario")
                        .and_then(JsonValue::as_str)
                        .unwrap_or_else(|| die(&format!("{path}: run #{i} missing `scenario`")))
                        .to_string(),
                    threads: field("threads"),
                    // Pre-incremental reports have no forecast marker; all
                    // their rows used the static provider.
                    online: run.get("forecast").and_then(JsonValue::as_str) == Some("online"),
                },
                p50_ms: run
                    .get("replan")
                    .and_then(|r| r.get("p50_ms"))
                    .and_then(JsonValue::as_f64)
                    .unwrap_or_else(|| die(&format!("{path}: run #{i} missing `replan.p50_ms`"))),
                ingest_p95_ms: run
                    .get("ingest")
                    .and_then(|r| r.get("p95_ms"))
                    .and_then(JsonValue::as_f64),
                assigned_tasks: field("assigned_tasks"),
                planning_calls: field("planning_calls"),
            }
        })
        .collect()
}

/// The two most recent numeric-tag reports under `dir`, oldest first.
/// Non-numeric tags (`BENCH_smoke.json`, …) are working files of the CI
/// smoke jobs, not part of the committed history, so they never gate.
fn latest_pair(dir: &str) -> (String, String) {
    let mut tagged: Vec<(u64, String)> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| die(&format!("cannot list {dir}: {e}")))
        .filter_map(|entry| {
            let name = entry.ok()?.file_name().into_string().ok()?;
            let tag = name.strip_prefix("BENCH_")?.strip_suffix(".json")?;
            Some((tag.parse().ok()?, format!("{dir}/{name}")))
        })
        .collect();
    tagged.sort();
    match tagged.len() {
        0 | 1 => {
            println!(
                "bench_compare: fewer than two numeric BENCH_<n>.json files in {dir}; \
                 nothing to compare"
            );
            println!("bench_compare_ok=1");
            exit(0);
        }
        n => (tagged[n - 2].1.clone(), tagged[n - 1].1.clone()),
    }
}

fn matched<'a>(old: &'a [Run], new: &'a [Run]) -> Vec<(&'a Run, &'a Run)> {
    new.iter()
        .filter_map(|n| {
            old.iter()
                .find(|o| {
                    o.key.scenario == n.key.scenario
                        && o.key.threads == n.key.threads
                        && o.key.online == n.key.online
                })
                .map(|o| (o, n))
        })
        .collect()
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (old_path, new_path, parity) = match argv.iter().map(String::as_str).collect::<Vec<_>>()[..]
    {
        [] => {
            let (o, n) = latest_pair(".");
            (o, n, false)
        }
        ["--dir", dir] => {
            let (o, n) = latest_pair(dir);
            (o, n, false)
        }
        ["--files", o, n] => (o.to_string(), n.to_string(), false),
        ["--parity", a, b] => (a.to_string(), b.to_string(), true),
        _ => die("usage: bench_compare [--dir DIR | --files OLD NEW | --parity A B]"),
    };

    let old_runs = load_runs(&old_path);
    let new_runs = load_runs(&new_path);
    let pairs = matched(&old_runs, &new_runs);

    // Runs present in only one report carry no regression signal; name them
    // so a shrinking intersection is visible in the log rather than silent.
    let key_of = |r: &Run| {
        format!(
            "{} threads={}{}",
            r.key.scenario,
            r.key.threads,
            if r.key.online { " (online)" } else { "" }
        )
    };
    for o in &old_runs {
        if !pairs.iter().any(|(p, _)| std::ptr::eq(*p, o)) {
            println!("skip old-only {}", key_of(o));
        }
    }
    for n in &new_runs {
        if !pairs.iter().any(|(_, p)| std::ptr::eq(*p, n)) {
            println!("skip new-only {}", key_of(n));
        }
    }
    if pairs.is_empty() {
        // Disjoint run sets — e.g. the latest two tags come from different
        // harnesses (soak vs service_bench). Nothing is comparable, so
        // nothing can regress; the skips above name every run.
        println!(
            "bench_compare: {old_path} and {new_path} share no \
             (scenario, threads) runs; nothing to gate"
        );
        println!("bench_compare_ok=1");
        return;
    }

    let mut failures = 0;
    for (old, new) in &pairs {
        let key = format!(
            "{} threads={}{}",
            new.key.scenario,
            new.key.threads,
            if new.key.online { " (online)" } else { "" }
        );
        if parity {
            let ok = old.assigned_tasks == new.assigned_tasks
                && old.planning_calls == new.planning_calls;
            println!(
                "{} {key}: assigned {} vs {}, planning_calls {} vs {}",
                if ok { "ok  " } else { "FAIL" },
                old.assigned_tasks,
                new.assigned_tasks,
                old.planning_calls,
                new.planning_calls,
            );
            failures += usize::from(!ok);
        } else {
            if new.key.online {
                continue;
            }
            let limit = old.p50_ms * MAX_RELATIVE_GROWTH + ABSOLUTE_FLOOR_MS;
            let ok = new.p50_ms <= limit;
            println!(
                "{} {key}: p50 {:.3} ms -> {:.3} ms (limit {:.3} ms)",
                if ok { "ok  " } else { "FAIL" },
                old.p50_ms,
                new.p50_ms,
                limit,
            );
            failures += usize::from(!ok);
            if let (Some(old_p95), Some(new_p95)) = (old.ingest_p95_ms, new.ingest_p95_ms) {
                let limit = old_p95 * MAX_RELATIVE_GROWTH + ABSOLUTE_FLOOR_MS;
                let ok = new_p95 <= limit;
                println!(
                    "{} {key}: ingest p95 {:.3} ms -> {:.3} ms (limit {:.3} ms)",
                    if ok { "ok  " } else { "FAIL" },
                    old_p95,
                    new_p95,
                    limit,
                );
                failures += usize::from(!ok);
            }
        }
    }

    if failures > 0 {
        eprintln!(
            "bench_compare: {failures} run(s) {} between {old_path} and {new_path}",
            if parity {
                "diverged"
            } else {
                "regressed >20% on replan p50"
            }
        );
        exit(1);
    }
    println!("bench_compare_ok=1");
}
