//! Arena-style stores for tasks and workers.
//!
//! Assignment algorithms and the streaming simulator refer to tasks and
//! workers by their dense identifiers; the stores own the actual records and
//! provide O(1) lookup plus the filtered views the algorithms need (open
//! tasks, available workers).

use crate::task::{Task, TaskId};
use crate::time::Timestamp;
use crate::worker::{Worker, WorkerId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Owning collection of tasks, addressable by [`TaskId`].
///
/// Task identifiers are expected to be dense (0..n); the workload generators
/// in `datawa-sim` always produce dense ids, and [`TaskStore::insert`] assigns
/// the next dense id itself.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TaskStore {
    tasks: Vec<Task>,
}

impl TaskStore {
    /// Creates an empty store.
    pub fn new() -> TaskStore {
        TaskStore { tasks: Vec::new() }
    }

    /// Creates a store from pre-built tasks, re-indexing their ids densely in
    /// input order.
    pub fn from_tasks<I: IntoIterator<Item = Task>>(tasks: I) -> TaskStore {
        let mut store = TaskStore::new();
        for t in tasks {
            store.insert_with_location(t.location, t.publication, t.expiration);
        }
        store
    }

    /// Inserts a task built from its components, assigning the next dense id.
    pub fn insert_with_location(
        &mut self,
        location: crate::location::Location,
        publication: Timestamp,
        expiration: Timestamp,
    ) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        self.tasks
            .push(Task::new(id, location, publication, expiration));
        id
    }

    /// Inserts an already-constructed task, overriding its id with the next
    /// dense id, and returns the assigned id.
    pub fn insert(&mut self, mut task: Task) -> TaskId {
        let id = TaskId(self.tasks.len() as u32);
        task.id = id;
        self.tasks.push(task);
        id
    }

    /// Number of tasks in the store.
    #[inline]
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the store is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Borrow a task by id. Panics if the id is out of range.
    #[inline]
    pub fn get(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// Borrow a task by id if present.
    #[inline]
    pub fn try_get(&self, id: TaskId) -> Option<&Task> {
        self.tasks.get(id.index())
    }

    /// Mutable borrow of a task by id.
    #[inline]
    pub fn get_mut(&mut self, id: TaskId) -> &mut Task {
        &mut self.tasks[id.index()]
    }

    /// Iterates over all tasks.
    pub fn iter(&self) -> impl Iterator<Item = &Task> {
        self.tasks.iter()
    }

    /// All task ids.
    pub fn ids(&self) -> impl Iterator<Item = TaskId> + '_ {
        (0..self.tasks.len() as u32).map(TaskId)
    }

    /// Ids of tasks that are open (published, unexpired) at `now`.
    pub fn open_at(&self, now: Timestamp) -> Vec<TaskId> {
        self.tasks
            .iter()
            .filter(|t| t.is_open_at(now))
            .map(|t| t.id)
            .collect()
    }

    /// Raw slice of tasks (dense id order).
    #[inline]
    pub fn as_slice(&self) -> &[Task] {
        &self.tasks
    }
}

/// Owning collection of workers, addressable by [`WorkerId`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WorkerStore {
    workers: Vec<Worker>,
}

impl WorkerStore {
    /// Creates an empty store.
    pub fn new() -> WorkerStore {
        WorkerStore {
            workers: Vec::new(),
        }
    }

    /// Creates a store from pre-built workers, re-indexing their ids densely
    /// in input order.
    pub fn from_workers<I: IntoIterator<Item = Worker>>(workers: I) -> WorkerStore {
        let mut store = WorkerStore::new();
        for w in workers {
            store.insert(w);
        }
        store
    }

    /// Inserts a worker, overriding its id with the next dense id, and returns
    /// the assigned id.
    pub fn insert(&mut self, mut worker: Worker) -> WorkerId {
        let id = WorkerId(self.workers.len() as u32);
        worker.id = id;
        self.workers.push(worker);
        id
    }

    /// Number of workers in the store.
    #[inline]
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the store is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// Borrow a worker by id. Panics if the id is out of range.
    #[inline]
    pub fn get(&self, id: WorkerId) -> &Worker {
        &self.workers[id.index()]
    }

    /// Borrow a worker by id if present.
    #[inline]
    pub fn try_get(&self, id: WorkerId) -> Option<&Worker> {
        self.workers.get(id.index())
    }

    /// Mutable borrow of a worker by id.
    #[inline]
    pub fn get_mut(&mut self, id: WorkerId) -> &mut Worker {
        &mut self.workers[id.index()]
    }

    /// Iterates over all workers.
    pub fn iter(&self) -> impl Iterator<Item = &Worker> {
        self.workers.iter()
    }

    /// Mutable iteration over all workers (the simulator moves workers along
    /// their planned legs).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Worker> {
        self.workers.iter_mut()
    }

    /// All worker ids.
    pub fn ids(&self) -> impl Iterator<Item = WorkerId> + '_ {
        (0..self.workers.len() as u32).map(WorkerId)
    }

    /// Ids of workers that are online and within their availability window at
    /// `now`.
    pub fn available_at(&self, now: Timestamp) -> Vec<WorkerId> {
        self.workers
            .iter()
            .filter(|w| w.is_available_at(now))
            .map(|w| w.id)
            .collect()
    }

    /// Raw slice of workers (dense id order).
    #[inline]
    pub fn as_slice(&self) -> &[Worker] {
        &self.workers
    }
}

/// Incrementally maintained set of *candidate open* task ids.
///
/// The streaming engine keeps one of these next to the [`TaskStore`] so that
/// finding the open tasks at a planning instant costs `O(|open|)` instead of a
/// full `O(|all tasks|)` rescan: arrivals [`OpenTaskView::insert`] in
/// `O(log n)`, expirations and served tasks [`OpenTaskView::remove`] in
/// `O(log n)`, and iteration yields ids in ascending order — exactly the
/// order the legacy full-scan loops produced, which keeps planning inputs
/// (and therefore assignment outputs) identical between the two drivers.
///
/// The view is a *candidate* set: a caller that has no expiration events
/// (the legacy synchronous loop) may leave expired tasks in the view and
/// filter them with [`Task::is_open_at`] while iterating; an event-driven
/// caller removes them eagerly when the expiration event fires.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OpenTaskView {
    open: BTreeSet<TaskId>,
}

impl OpenTaskView {
    /// Creates an empty view.
    pub fn new() -> OpenTaskView {
        OpenTaskView::default()
    }

    /// Adds a task id to the view (`O(log n)`). Returns `false` if already
    /// present.
    #[inline]
    pub fn insert(&mut self, id: TaskId) -> bool {
        self.open.insert(id)
    }

    /// Removes a task id from the view (`O(log n)`). Returns `true` if it was
    /// present.
    #[inline]
    pub fn remove(&mut self, id: TaskId) -> bool {
        self.open.remove(&id)
    }

    /// Whether the id is in the view.
    #[inline]
    pub fn contains(&self, id: TaskId) -> bool {
        self.open.contains(&id)
    }

    /// Number of candidate ids.
    #[inline]
    pub fn len(&self) -> usize {
        self.open.len()
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.open.is_empty()
    }

    /// Iterates the candidate ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = TaskId> + '_ {
        self.open.iter().copied()
    }

    /// The ids (ascending) of tasks that are really open at `now`, removing
    /// from the view every candidate whose lifetime has already ended (lazy
    /// expiration for callers without expiration events).
    pub fn open_at(&mut self, store: &TaskStore, now: Timestamp) -> Vec<TaskId> {
        let mut open = Vec::with_capacity(self.open.len());
        let mut expired: Vec<TaskId> = Vec::new();
        for &id in &self.open {
            let task = store.get(id);
            if task.is_open_at(now) {
                open.push(id);
            } else if task.is_expired_at(now) {
                expired.push(id);
            }
        }
        for id in expired {
            self.open.remove(&id);
        }
        open
    }
}

/// Incrementally maintained set of *candidate available* worker ids, the
/// worker-side companion of [`OpenTaskView`].
///
/// Worker-online transitions [`AvailableWorkerView::insert`] in `O(log n)`,
/// offline transitions [`AvailableWorkerView::remove`] in `O(log n)`, and
/// [`AvailableWorkerView::available_at`] lazily prunes workers whose window
/// closed for callers that do not schedule offline events.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AvailableWorkerView {
    available: BTreeSet<WorkerId>,
}

impl AvailableWorkerView {
    /// Creates an empty view.
    pub fn new() -> AvailableWorkerView {
        AvailableWorkerView::default()
    }

    /// Adds a worker id to the view (`O(log n)`). Returns `false` if already
    /// present.
    #[inline]
    pub fn insert(&mut self, id: WorkerId) -> bool {
        self.available.insert(id)
    }

    /// Removes a worker id from the view (`O(log n)`). Returns `true` if it
    /// was present.
    #[inline]
    pub fn remove(&mut self, id: WorkerId) -> bool {
        self.available.remove(&id)
    }

    /// Whether the id is in the view.
    #[inline]
    pub fn contains(&self, id: WorkerId) -> bool {
        self.available.contains(&id)
    }

    /// Number of candidate ids.
    #[inline]
    pub fn len(&self) -> usize {
        self.available.len()
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.available.is_empty()
    }

    /// Iterates the candidate ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = WorkerId> + '_ {
        self.available.iter().copied()
    }

    /// The ids (ascending) of workers really available at `now`, removing
    /// from the view every candidate whose availability window has already
    /// closed (lazy retirement for callers without offline events).
    pub fn available_at(&mut self, store: &WorkerStore, now: Timestamp) -> Vec<WorkerId> {
        let mut available = Vec::with_capacity(self.available.len());
        let mut gone: Vec<WorkerId> = Vec::new();
        for &id in &self.available {
            let worker = store.get(id);
            if worker.is_available_at(now) {
                available.push(id);
            } else if now.0 >= worker.off().0 {
                gone.push(id);
            }
        }
        for id in gone {
            self.available.remove(&id);
        }
        available
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::location::Location;

    #[test]
    fn task_store_assigns_dense_ids() {
        let mut s = TaskStore::new();
        let a = s.insert_with_location(Location::new(0.0, 0.0), Timestamp(0.0), Timestamp(5.0));
        let b = s.insert_with_location(Location::new(1.0, 0.0), Timestamp(1.0), Timestamp(6.0));
        assert_eq!(a, TaskId(0));
        assert_eq!(b, TaskId(1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(b).publication, Timestamp(1.0));
    }

    #[test]
    fn open_at_filters_by_lifetime() {
        let mut s = TaskStore::new();
        s.insert_with_location(Location::ORIGIN, Timestamp(0.0), Timestamp(5.0));
        s.insert_with_location(Location::ORIGIN, Timestamp(10.0), Timestamp(15.0));
        assert_eq!(s.open_at(Timestamp(1.0)), vec![TaskId(0)]);
        assert_eq!(s.open_at(Timestamp(11.0)), vec![TaskId(1)]);
        assert!(s.open_at(Timestamp(6.0)).is_empty());
    }

    #[test]
    fn worker_store_reindexes_ids() {
        let w = Worker::new(
            WorkerId(99),
            Location::ORIGIN,
            1.0,
            Timestamp(0.0),
            Timestamp(10.0),
        );
        let mut s = WorkerStore::new();
        let id = s.insert(w);
        assert_eq!(id, WorkerId(0));
        assert_eq!(s.get(id).id, WorkerId(0));
    }

    #[test]
    fn available_at_uses_windows() {
        let mut s = WorkerStore::new();
        s.insert(Worker::new(
            WorkerId(0),
            Location::ORIGIN,
            1.0,
            Timestamp(0.0),
            Timestamp(10.0),
        ));
        s.insert(Worker::new(
            WorkerId(0),
            Location::ORIGIN,
            1.0,
            Timestamp(20.0),
            Timestamp(30.0),
        ));
        assert_eq!(s.available_at(Timestamp(5.0)), vec![WorkerId(0)]);
        assert_eq!(s.available_at(Timestamp(25.0)), vec![WorkerId(1)]);
        assert!(s.available_at(Timestamp(15.0)).is_empty());
    }

    #[test]
    fn open_task_view_tracks_and_prunes() {
        let mut s = TaskStore::new();
        let a = s.insert_with_location(Location::ORIGIN, Timestamp(0.0), Timestamp(5.0));
        let b = s.insert_with_location(Location::ORIGIN, Timestamp(2.0), Timestamp(9.0));
        let mut view = OpenTaskView::new();
        view.insert(a);
        view.insert(b);
        assert_eq!(view.open_at(&s, Timestamp(1.0)), vec![a]);
        assert_eq!(view.open_at(&s, Timestamp(3.0)), vec![a, b]);
        // After a's expiration the lazy scan prunes it from the view.
        assert_eq!(view.open_at(&s, Timestamp(6.0)), vec![b]);
        assert_eq!(view.len(), 1);
        assert!(!view.contains(a));
        assert!(view.remove(b));
        assert!(view.is_empty());
    }

    #[test]
    fn available_worker_view_tracks_and_prunes() {
        let mut s = WorkerStore::new();
        let a = s.insert(Worker::new(
            WorkerId(0),
            Location::ORIGIN,
            1.0,
            Timestamp(0.0),
            Timestamp(10.0),
        ));
        let b = s.insert(Worker::new(
            WorkerId(0),
            Location::ORIGIN,
            1.0,
            Timestamp(5.0),
            Timestamp(30.0),
        ));
        let mut view = AvailableWorkerView::new();
        view.insert(a);
        view.insert(b);
        assert_eq!(view.available_at(&s, Timestamp(6.0)), vec![a, b]);
        // a's window closed at 10: pruned lazily.
        assert_eq!(view.available_at(&s, Timestamp(12.0)), vec![b]);
        assert_eq!(view.len(), 1);
        assert!(!view.contains(a));
    }

    #[test]
    fn views_iterate_in_ascending_id_order() {
        let mut view = OpenTaskView::new();
        for raw in [5u32, 1, 3, 2] {
            view.insert(TaskId(raw));
        }
        let order: Vec<u32> = view.iter().map(|t| t.0).collect();
        assert_eq!(order, vec![1, 2, 3, 5]);
    }

    #[test]
    fn from_tasks_reindexes() {
        let t = Task::new(TaskId(7), Location::ORIGIN, Timestamp(0.0), Timestamp(1.0));
        let s = TaskStore::from_tasks(vec![t]);
        assert_eq!(s.get(TaskId(0)).id, TaskId(0));
    }
}
