//! Offline stand-in for `proptest`.
//!
//! The build environment has no crates.io access, so this vendored crate
//! reimplements the slice of the proptest API the workspace's property tests
//! use: [`Strategy`] with `prop_map`, range strategies over `f64`, tuple
//! strategies, `prop::collection::vec`, `any::<bool>()`, [`Just`] and the
//! [`prop_oneof!`] union, [`ProptestConfig`] and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Differences from the real proptest: cases are sampled from a fixed seed
//! (fully deterministic run-to-run) and failing cases are not shrunk — the
//! panic message simply reports the case index so it can be replayed.

use rand::prelude::*;

/// Deterministic RNG handed to strategies by the [`proptest!`] runner.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// The fixed-seed generator used by every `proptest!` block.
    pub fn deterministic() -> TestRng {
        TestRng {
            inner: StdRng::seed_from_u64(0x70726F7074657374), // "proptest"
        }
    }

    /// Uniform `f64` in `[low, high)`.
    pub fn uniform_f64(&mut self, low: f64, high: f64) -> f64 {
        self.inner.gen_range(low..high)
    }

    /// Uniform `usize` in `[low, high)`.
    pub fn uniform_usize(&mut self, low: usize, high: usize) -> usize {
        self.inner.gen_range(low..high)
    }

    /// Fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.inner.next_u64() & 1 == 1
    }
}

/// A generator of test values (no shrinking in this stub).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.uniform_f64(self.start, self.end)
    }
}

impl Strategy for std::ops::Range<usize> {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        rng.uniform_usize(self.start, self.end)
    }
}

macro_rules! tuple_strategy {
    ($($s:ident => $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A => 0, B => 1);
tuple_strategy!(A => 0, B => 1, C => 2);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4);
tuple_strategy!(A => 0, B => 1, C => 2, D => 3, E => 4, F => 5);

/// A strategy that always yields the same value (`proptest::strategy::Just`).
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// A uniform choice between strategies with a common value type (the
/// expansion of [`prop_oneof!`]; the real proptest's weighted variant is not
/// supported).
pub struct Union<V> {
    options: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// An empty union; [`Union::or`] adds options.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Union<V> {
        Union {
            options: Vec::new(),
        }
    }

    /// Adds one option.
    #[must_use]
    pub fn or(mut self, option: impl Strategy<Value = V> + 'static) -> Union<V> {
        self.options.push(Box::new(option));
        self
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.options.is_empty(), "prop_oneof! needs an option");
        let pick = rng.uniform_usize(0, self.options.len());
        self.options[pick].generate(rng)
    }
}

/// Uniform choice between strategies (`proptest::prop_oneof!`, without the
/// weighted form).
#[macro_export]
macro_rules! prop_oneof {
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::Union::new()$(.or($strat))+
    };
}

/// `any::<T>()` support.
pub trait Arbitrary {
    /// Generates an arbitrary value of the type.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.flip()
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        ((rng.uniform_usize(0, 1 << 31) as u64) << 31) | rng.uniform_usize(0, 1 << 31) as u64
    }
}

/// Strategy for [`Arbitrary`] types.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy producing `Vec`s of `element` with a length drawn from
        /// `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: std::ops::Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = if self.size.start >= self.size.end {
                    self.size.start
                } else {
                    rng.uniform_usize(self.size.start, self.size.end)
                };
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Builds a vector strategy.
        pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_oneof, proptest, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a `proptest!` body (panics on failure; this
/// stub does not shrink).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic();
            for __case in 0..__config.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __run = || -> () { $body };
                __run();
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(x in 0.0f64..5.0, n in 1usize..4) {
            prop_assert!((0.0..5.0).contains(&x));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..6).prop_map(|pairs| {
                pairs.into_iter().map(|(a, b)| a + b).collect::<Vec<f64>>()
            }),
            flag in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|s| (0.0..2.0).contains(s)));
            prop_assert!(usize::from(flag) <= 1);
        }
    }
}
