//! Tunable parameters of the assignment stack.

use datawa_core::TravelModel;

/// Whether the planner may reuse per-partition plans across planning instants
/// (see the crate-level "Incremental replanning" section).
///
/// Incremental replanning is bitwise output-preserving by construction, so it
/// defaults to on; the `Off` escape hatch exists for A/B parity checks and as
/// a kill switch, mirroring how `DATAWA_THREADS` pins the pool size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IncrementalMode {
    /// Defer to the `DATAWA_INCREMENTAL` environment variable
    /// (`off`/`0`/`false` disables; anything else — including unset —
    /// enables). The default.
    #[default]
    Auto,
    /// Force plan caching on regardless of the environment.
    On,
    /// Force full replanning at every instant regardless of the environment.
    Off,
}

impl IncrementalMode {
    /// Resolves the effective toggle, reading `DATAWA_INCREMENTAL` for
    /// [`IncrementalMode::Auto`] through [`datawa_core::env_config`]. Read
    /// per call (not cached) so toggling the variable between runs in one
    /// process behaves as expected.
    pub fn enabled(self) -> bool {
        match self {
            IncrementalMode::On => true,
            IncrementalMode::Off => false,
            IncrementalMode::Auto => datawa_core::env_config::incremental_enabled(),
        }
    }
}

/// Configuration shared by sequence generation, planning and the adaptive
/// runner.
///
/// The paper does not bound the length of valid task sequences; in practice
/// the search space is kept tractable by the worker dependency separation.
/// This implementation additionally caps the number of reachable tasks
/// considered per worker (`max_reachable_per_worker`, nearest-first) and the
/// sequence length (`max_sequence_len`), which bounds `|Q_w|` — the ablation
/// bench quantifies the effect of these caps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AssignConfig {
    /// Travel model shared by every validity rule.
    pub travel: TravelModel,
    /// Maximum number of (nearest) reachable tasks considered per worker when
    /// enumerating candidate sequences.
    pub max_reachable_per_worker: usize,
    /// Maximum length of a candidate task sequence.
    pub max_sequence_len: usize,
    /// Whether `Q_w` keeps non-maximal task sets too (needed by the exact
    /// search to reach the optimum; maximal-only is faster).
    pub include_subsets: bool,
    /// Hard cap on exact-DFSearch node expansions per tree node, after which
    /// the search falls back to the best assignment found so far. Keeps the
    /// worst-case planning latency bounded on dense cliques.
    pub search_node_budget: usize,
    /// Whether to use the worker-dependency-separation clique tree (ablation
    /// switch; `false` solves each connected component as a single node).
    pub use_dependency_separation: bool,
    /// Number of planner threads the partitioned search fans cluster-tree
    /// subtrees out to. `0` (the default) defers to the `DATAWA_THREADS`
    /// environment variable, falling back to single-threaded planning when it
    /// is unset; any positive value pins the pool size explicitly. Results
    /// are identical for every thread count by construction (partitions are
    /// worker- and task-disjoint and merge in partition order).
    pub threads: usize,
    /// Whether the partitioned exact search may reuse cached per-partition
    /// plans across planning instants (`DATAWA_INCREMENTAL` escape hatch via
    /// [`IncrementalMode::Auto`]). Output is bitwise identical either way;
    /// only the work done per instant changes.
    pub incremental: IncrementalMode,
}

impl Default for AssignConfig {
    fn default() -> Self {
        AssignConfig {
            travel: TravelModel::urban_driving(),
            max_reachable_per_worker: 8,
            max_sequence_len: 3,
            include_subsets: true,
            search_node_budget: 20_000,
            use_dependency_separation: true,
            threads: 0,
            incremental: IncrementalMode::Auto,
        }
    }
}

impl AssignConfig {
    /// Config with a unit-speed Euclidean travel model, convenient for small
    /// hand-built examples (like the paper's Fig. 1) whose coordinates are in
    /// abstract units.
    pub fn unit_speed() -> AssignConfig {
        AssignConfig {
            travel: TravelModel::euclidean(1.0),
            ..AssignConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = AssignConfig::default();
        assert!(c.max_sequence_len >= 1);
        assert!(c.max_reachable_per_worker >= c.max_sequence_len);
        assert!(c.search_node_budget > 0);
        assert!(c.use_dependency_separation);
    }

    #[test]
    fn unit_speed_uses_unit_euclidean_travel() {
        let c = AssignConfig::unit_speed();
        assert_eq!(c.travel.speed, 1.0);
    }

    #[test]
    fn incremental_mode_pins_override_the_environment() {
        // `Auto` reads `DATAWA_INCREMENTAL` (not exercised here — tests
        // share a process, so flipping the environment would race); the
        // explicit pins must ignore it entirely.
        assert!(IncrementalMode::On.enabled());
        assert!(!IncrementalMode::Off.enabled());
        assert_eq!(AssignConfig::default().incremental, IncrementalMode::Auto);
    }
}
