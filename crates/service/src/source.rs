//! Ingest sources: where a dispatch service's arrivals come from.
//!
//! An [`IngestSource`] produces `(time, event)` pairs in non-decreasing
//! timestamp order. [`WorkloadSource`] replays a pre-built
//! [`Workload`] as fast as the service will take it;
//! [`LiveSource`] paces the same arrivals against a simulated wall clock, so
//! the session experiences quiet periods (in which expirations and time-driven
//! re-plans fire) between bursts — the shape of real request traffic.
//! [`NetSource`] is the push half: a connection handler feeds events through
//! a [`NetSourceHandle`] from another thread, which is how the `datawa-net`
//! transport front-end bridges TCP connections into a [`DispatchService`]
//! (see `PROTOCOL.md` at the workspace root for the wire format).
//!
//! [`DispatchService`]: crate::DispatchService

use datawa_core::{Duration, Timestamp};
use datawa_stream::{Event, Workload};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;

/// One poll of an ingest source.
#[derive(Debug, Clone, PartialEq)]
pub enum SourcePoll {
    /// An arrival is due now: ingest it.
    Ready(Timestamp, Event),
    /// No arrival is due yet; simulated time has advanced to the carried
    /// instant, and the service should advance its session there.
    Wait(Timestamp),
    /// The source has no further arrivals.
    Exhausted,
}

/// A producer of arrivals in non-decreasing timestamp order.
pub trait IngestSource {
    /// Polls for the next arrival.
    fn poll(&mut self) -> SourcePoll;

    /// Arrivals not yet handed out.
    fn remaining(&self) -> usize;
}

/// Replays a workload's arrivals in the engine's deterministic order:
/// ascending time, workers before tasks at equal times, original order within
/// each kind — exactly the order the batch driver's queue would pop them, so
/// a service fed by this source reproduces batch outcomes bit for bit.
#[derive(Debug, Clone)]
pub struct WorkloadSource {
    arrivals: Vec<(Timestamp, Event)>,
    cursor: usize,
}

impl WorkloadSource {
    /// Builds a replay source over `workload`.
    #[must_use]
    pub fn new(workload: &Workload) -> WorkloadSource {
        let mut arrivals: Vec<(Timestamp, Event)> = workload
            .workers
            .iter()
            .map(|w| (w.on(), Event::WorkerOnline(*w)))
            .chain(
                workload
                    .tasks
                    .iter()
                    .map(|t| (t.publication, Event::TaskArrival(*t))),
            )
            .collect();
        // Stable sort on (time, class): FIFO within each (time, class)
        // bucket matches the queue's insertion-order tie-break.
        arrivals
            .sort_by(|(ta, ea), (tb, eb)| ta.0.total_cmp(&tb.0).then(ea.class().cmp(&eb.class())));
        WorkloadSource {
            arrivals,
            cursor: 0,
        }
    }

    /// The next due arrival, without consuming it.
    pub fn peek(&self) -> Option<&(Timestamp, Event)> {
        self.arrivals.get(self.cursor)
    }
}

impl IngestSource for WorkloadSource {
    fn poll(&mut self) -> SourcePoll {
        match self.arrivals.get(self.cursor) {
            Some((t, e)) => {
                let poll = SourcePoll::Ready(*t, e.clone());
                self.cursor += 1;
                poll
            }
            None => SourcePoll::Exhausted,
        }
    }

    fn remaining(&self) -> usize {
        self.arrivals.len() - self.cursor
    }
}

/// A paced source: arrivals are released only once a simulated clock reaches
/// their timestamp; while the head arrival is still in the future, each poll
/// advances the clock by at most one pacing step and reports
/// [`SourcePoll::Wait`] so the service can advance its session through the
/// quiet period.
///
/// A `Wait` is always *strictly before* the next arrival's timestamp: the
/// step that would land on (or past) the head arrival releases the arrival
/// instead. This matters for correctness, not just pacing — if the service
/// advanced its session *to* an arrival's instant before ingesting it, a
/// replan tick due at that exact instant would fire ahead of the arrival,
/// inverting the engine's tick-last same-instant ordering (and losing
/// assignments the batch driver makes).
///
/// By default the clock is simulated (no real sleeping), so paced runs stay
/// deterministic and as fast as the hardware allows — the pacing step only
/// controls how finely quiet periods are sliced. Opt into *wall-clock*
/// pacing with [`LiveSource::with_wall_clock`]: each poll then also sleeps
/// until real time has caught up with the simulated clock (at a configurable
/// simulated-seconds-per-real-second rate), which turns the source into a
/// true real-time front-end driver. The decision stream is identical either
/// way — wall pacing changes *when* polls return, never what they return.
#[derive(Debug, Clone)]
pub struct LiveSource {
    inner: WorkloadSource,
    clock: Timestamp,
    step: Duration,
    wall: Option<WallClock>,
}

/// Wall-clock pacing state: simulated seconds advance `rate` times faster
/// than real seconds, anchored at the first poll.
#[derive(Debug, Clone)]
struct WallClock {
    rate: f64,
    anchor: Option<(std::time::Instant, f64)>,
}

impl LiveSource {
    /// Paces `workload` with the given pacing step (simulated seconds per
    /// quiet-period poll). The clock starts at the first arrival, so a
    /// non-empty workload is never preceded by dead waiting.
    ///
    /// Panics on a non-positive or non-finite step: the clock must advance.
    #[must_use]
    pub fn new(workload: &Workload, step: f64) -> LiveSource {
        assert!(
            step.is_finite() && step > 0.0,
            "pacing step must be a positive finite number of seconds, got {step}"
        );
        let inner = WorkloadSource::new(workload);
        let clock = inner.peek().map(|(t, _)| *t).unwrap_or(Timestamp(0.0));
        LiveSource {
            inner,
            clock,
            step: Duration(step),
            wall: None,
        }
    }

    /// Opts into wall-clock pacing: polls block (sleep) until real time
    /// catches up with the simulated clock, with `rate` simulated seconds
    /// elapsing per real second (`1.0` = real time, `60.0` = a minute of
    /// simulated traffic per wall second). The real-time anchor is set at
    /// the first poll, so construction cost is excluded.
    ///
    /// The default (no wall pacing) remains the deterministic simulated
    /// clock; this is the opt-in for true real-time front-ends.
    ///
    /// Panics on a non-positive or non-finite rate.
    #[must_use]
    pub fn with_wall_clock(mut self, rate: f64) -> LiveSource {
        assert!(
            rate.is_finite() && rate > 0.0,
            "wall-clock rate must be a positive finite number of simulated seconds per real second, got {rate}"
        );
        self.wall = Some(WallClock { rate, anchor: None });
        self
    }

    /// The current simulated wall-clock time.
    pub fn now(&self) -> Timestamp {
        self.clock
    }

    /// Sleeps until real time reaches the simulated clock under the
    /// configured rate (no-op without wall pacing).
    fn pace_to_wall_clock(&mut self) {
        let Some(wall) = self.wall.as_mut() else {
            return;
        };
        // Pacing is the service boundary's job: map simulated time onto the
        // real clock without ever feeding it back into planning.
        #[allow(clippy::disallowed_methods)]
        let (anchor_instant, anchor_sim) = *wall
            .anchor
            .get_or_insert((std::time::Instant::now(), self.clock.0));
        let due_real = (self.clock.0 - anchor_sim) / wall.rate;
        let elapsed = anchor_instant.elapsed().as_secs_f64();
        if due_real > elapsed {
            std::thread::sleep(std::time::Duration::from_secs_f64(due_real - elapsed));
        }
    }
}

impl IngestSource for LiveSource {
    fn poll(&mut self) -> SourcePoll {
        match self.inner.peek() {
            None => SourcePoll::Exhausted,
            Some((t, _)) if t.0 <= self.clock.0 => {
                self.pace_to_wall_clock();
                self.inner.poll()
            }
            Some((t, _)) => {
                // Head arrival is in the future: advance the simulated clock
                // one pacing step toward it. A step that reaches the arrival
                // releases it in the same poll, so every reported Wait stays
                // strictly before the next arrival's timestamp.
                let stepped = self.clock.0 + self.step.0;
                if stepped >= t.0 {
                    self.clock = Timestamp(t.0);
                    self.pace_to_wall_clock();
                    self.inner.poll()
                } else {
                    self.clock = Timestamp(stepped);
                    self.pace_to_wall_clock();
                    SourcePoll::Wait(self.clock)
                }
            }
        }
    }

    fn remaining(&self) -> usize {
        self.inner.remaining()
    }
}

/// What a [`NetSourceHandle`] feeds into the channel: the same vocabulary a
/// pull source's [`SourcePoll`] reports, minus `Exhausted` (that is signalled
/// by dropping the sender, so a crashed producer thread and an orderly
/// [`NetSourceHandle::close`] both end the stream).
#[derive(Debug)]
enum NetItem {
    Event(Timestamp, Event),
    Advance(Timestamp),
}

/// The push half of a [`NetSource`]: lives on the connection (producer) side
/// and feeds events across threads into the service's pump.
///
/// Cloning is cheap; the source is exhausted once *every* clone has been
/// dropped or [`closed`](NetSourceHandle::close).
/// [`pending`](NetSourceHandle::pending) exposes the not-yet-polled backlog so callers
/// can apply admission control *before* pushing — the channel itself is
/// unbounded and never blocks the producer.
#[derive(Debug, Clone)]
pub struct NetSourceHandle {
    tx: Sender<NetItem>,
    depth: Arc<AtomicUsize>,
}

/// The handle's event was not delivered: the consuming service has shut
/// down (its [`NetSource`] was dropped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SourceClosed;

impl NetSourceHandle {
    /// Pushes one event; the paired [`NetSource`] will report it as
    /// [`SourcePoll::Ready`]. Callers must preserve the non-decreasing
    /// timestamp contract of [`IngestSource`].
    pub fn push_event(&self, time: Timestamp, event: Event) -> Result<(), SourceClosed> {
        // Count before sending so a poll racing the send can never observe
        // the backlog under-reported. (SeqCst: this counter is cross-thread
        // admission-control state, not an audited obs-crate hot path.)
        self.depth.fetch_add(1, Ordering::SeqCst);
        self.tx.send(NetItem::Event(time, event)).map_err(|_| {
            self.depth.fetch_sub(1, Ordering::SeqCst);
            SourceClosed
        })
    }

    /// Requests that the service advance its session to `time` (reported as
    /// [`SourcePoll::Wait`]), letting expirations and time-driven re-plans
    /// fire through a quiet period.
    pub fn push_advance(&self, time: Timestamp) -> Result<(), SourceClosed> {
        self.tx
            .send(NetItem::Advance(time))
            .map_err(|_| SourceClosed)
    }

    /// Events pushed but not yet polled by the service — the admission
    /// backlog this producer is responsible for.
    pub fn pending(&self) -> usize {
        self.depth.load(Ordering::SeqCst)
    }

    /// Ends the stream for this clone. Once all clones are closed or
    /// dropped, the paired [`NetSource`] reports [`SourcePoll::Exhausted`].
    pub fn close(self) {
        drop(self);
    }
}

/// A push-fed [`IngestSource`]: the pull half of a cross-thread channel
/// whose push half is a [`NetSourceHandle`].
///
/// `poll` *blocks* until the producer pushes something or hangs up, so a
/// service pumping a `NetSource` is a dedicated thread that sleeps through
/// quiet periods instead of spinning. This is the bridge the `datawa-net`
/// listener uses to run one [`DispatchService`](crate::DispatchService) per
/// tenant connection.
#[derive(Debug)]
pub struct NetSource {
    rx: Receiver<NetItem>,
    depth: Arc<AtomicUsize>,
    exhausted: bool,
}

impl NetSource {
    /// Builds a connected handle/source pair.
    #[must_use]
    pub fn channel() -> (NetSourceHandle, NetSource) {
        let (tx, rx) = channel();
        let depth = Arc::new(AtomicUsize::new(0));
        (
            NetSourceHandle {
                tx,
                depth: Arc::clone(&depth),
            },
            NetSource {
                rx,
                depth,
                exhausted: false,
            },
        )
    }
}

impl IngestSource for NetSource {
    fn poll(&mut self) -> SourcePoll {
        if self.exhausted {
            return SourcePoll::Exhausted;
        }
        match self.rx.recv() {
            Ok(NetItem::Event(time, event)) => {
                self.depth.fetch_sub(1, Ordering::SeqCst);
                SourcePoll::Ready(time, event)
            }
            Ok(NetItem::Advance(time)) => SourcePoll::Wait(time),
            Err(_) => {
                self.exhausted = true;
                SourcePoll::Exhausted
            }
        }
    }

    fn remaining(&self) -> usize {
        self.depth.load(Ordering::SeqCst)
    }
}

/// An [`IngestSource`] that survives its consumer: the wrapped source lives
/// behind a shared lock held only for the duration of a single poll, so a
/// supervisor can hand a pump thread one clone, catch the pump's panic, and
/// hand a fresh pump another clone — events still queued inside the source
/// (for example a [`NetSource`]'s channel backlog) are not lost with the
/// crashed pump.
#[derive(Debug)]
pub struct SharedSource<S: IngestSource> {
    inner: Arc<std::sync::Mutex<S>>,
}

impl<S: IngestSource> Clone for SharedSource<S> {
    fn clone(&self) -> SharedSource<S> {
        SharedSource {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<S: IngestSource> SharedSource<S> {
    /// Wraps `source` for shared cross-restart access.
    #[must_use]
    pub fn new(source: S) -> SharedSource<S> {
        SharedSource {
            inner: Arc::new(std::sync::Mutex::new(source)),
        }
    }

    /// The lock cannot be poisoned by a pump panic in practice — polls do
    /// not panic and the guard never outlives one call — but a supervisor
    /// recovering from arbitrary panics must not find its source wedged, so
    /// poisoning is recovered rather than unwrapped.
    fn lock(&self) -> std::sync::MutexGuard<'_, S> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<S: IngestSource> IngestSource for SharedSource<S> {
    fn poll(&mut self) -> SourcePoll {
        self.lock().poll()
    }

    fn remaining(&self) -> usize {
        self.lock().remaining()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datawa_core::{Location, Task, TaskId, Worker, WorkerId};

    fn workload() -> Workload {
        let worker = |on: f64| {
            Worker::new(
                WorkerId(0),
                Location::new(0.0, 0.0),
                1.0,
                Timestamp(on),
                Timestamp(on + 100.0),
            )
        };
        let task = |p: f64| {
            Task::new(
                TaskId(0),
                Location::new(1.0, 0.0),
                Timestamp(p),
                Timestamp(p + 50.0),
            )
        };
        Workload {
            workers: vec![worker(5.0), worker(0.0)],
            tasks: vec![task(5.0), task(2.0)],
        }
    }

    #[test]
    fn workload_source_orders_like_the_engine_queue() {
        let mut source = WorkloadSource::new(&workload());
        assert_eq!(source.remaining(), 4);
        let mut order = Vec::new();
        while let SourcePoll::Ready(t, e) = source.poll() {
            order.push((t.0, e.kind()));
        }
        assert_eq!(
            order,
            vec![
                (0.0, "WorkerOnline"),
                (2.0, "TaskArrival"),
                (5.0, "WorkerOnline"), // workers before tasks at equal times
                (5.0, "TaskArrival"),
            ]
        );
        assert_eq!(source.remaining(), 0);
        assert_eq!(source.poll(), SourcePoll::Exhausted);
    }

    #[test]
    fn live_source_paces_against_the_simulated_clock() {
        let mut source = LiveSource::new(&workload(), 1.0);
        assert_eq!(
            source.now(),
            Timestamp(0.0),
            "clock starts at first arrival"
        );
        // The first arrival is due immediately; the step that reaches the
        // next arrival's timestamp releases it instead of waiting at it.
        assert!(matches!(source.poll(), SourcePoll::Ready(t, _) if t.0 == 0.0));
        assert_eq!(source.poll(), SourcePoll::Wait(Timestamp(1.0)));
        assert!(matches!(source.poll(), SourcePoll::Ready(t, _) if t.0 == 2.0));
        // Every Wait stays strictly before the head arrival at t=5.
        let mut waits = 0;
        loop {
            match source.poll() {
                SourcePoll::Wait(t) => {
                    waits += 1;
                    assert!(t.0 < 5.0);
                }
                SourcePoll::Ready(t, _) => {
                    assert_eq!(t.0, 5.0);
                    break;
                }
                SourcePoll::Exhausted => panic!("source drained early"),
            }
        }
        assert_eq!(waits, 2, "3.0 and 4.0; the step to 5.0 releases instead");
    }

    #[test]
    #[should_panic(expected = "pacing step")]
    fn zero_pacing_step_is_rejected() {
        let _ = LiveSource::new(&workload(), 0.0);
    }

    #[test]
    fn wall_clock_pacing_blocks_until_real_time_catches_up() {
        // 5 simulated seconds of workload at 100 sim-seconds per real second
        // must take at least ~50 ms of wall time, and the polls themselves
        // must be identical to the unpaced run.
        let unpaced: Vec<SourcePoll> = {
            let mut s = LiveSource::new(&workload(), 1.0);
            std::iter::from_fn(|| match s.poll() {
                SourcePoll::Exhausted => None,
                p => Some(p),
            })
            .collect()
        };
        let mut paced = LiveSource::new(&workload(), 1.0).with_wall_clock(100.0);
        #[allow(clippy::disallowed_methods)] // the test measures the pacing it exists to verify
        let start = std::time::Instant::now();
        let polls: Vec<SourcePoll> = std::iter::from_fn(|| match paced.poll() {
            SourcePoll::Exhausted => None,
            p => Some(p),
        })
        .collect();
        let elapsed = start.elapsed();
        assert_eq!(polls, unpaced, "wall pacing changed the poll stream");
        assert!(
            elapsed >= std::time::Duration::from_millis(40),
            "5 simulated seconds at 100x should block ≥ ~50 ms, took {elapsed:?}"
        );
        assert!(
            elapsed < std::time::Duration::from_secs(2),
            "wall pacing overshot wildly: {elapsed:?}"
        );
    }

    #[test]
    #[should_panic(expected = "wall-clock rate")]
    fn non_positive_wall_rate_is_rejected() {
        let _ = LiveSource::new(&workload(), 1.0).with_wall_clock(0.0);
    }

    #[test]
    fn net_source_delivers_pushes_in_order_and_exhausts_on_close() {
        let (handle, mut source) = NetSource::channel();
        let w = workload();
        handle
            .push_event(Timestamp(0.0), Event::WorkerOnline(w.workers[1]))
            .unwrap();
        handle
            .push_event(Timestamp(2.0), Event::TaskArrival(w.tasks[1]))
            .unwrap();
        handle.push_advance(Timestamp(3.0)).unwrap();
        assert_eq!(handle.pending(), 2, "advances are not backlog");
        assert_eq!(source.remaining(), 2);
        assert!(matches!(source.poll(), SourcePoll::Ready(t, _) if t.0 == 0.0));
        assert!(matches!(source.poll(), SourcePoll::Ready(t, _) if t.0 == 2.0));
        assert_eq!(source.poll(), SourcePoll::Wait(Timestamp(3.0)));
        assert_eq!(source.remaining(), 0);
        handle.close();
        assert_eq!(source.poll(), SourcePoll::Exhausted);
        assert_eq!(source.poll(), SourcePoll::Exhausted, "exhaustion is sticky");
    }

    #[test]
    fn net_source_push_fails_once_the_service_side_is_gone() {
        let (handle, source) = NetSource::channel();
        drop(source);
        let w = workload();
        assert_eq!(
            handle.push_event(Timestamp(0.0), Event::TaskArrival(w.tasks[0])),
            Err(SourceClosed)
        );
        assert_eq!(handle.push_advance(Timestamp(1.0)), Err(SourceClosed));
        assert_eq!(handle.pending(), 0, "undelivered events are not counted");
    }

    #[test]
    fn shared_source_survives_a_crashed_consumer() {
        let (handle, source) = NetSource::channel();
        let shared = SharedSource::new(source);
        let w = workload();
        handle
            .push_event(Timestamp(0.0), Event::TaskArrival(w.tasks[1]))
            .unwrap();
        handle
            .push_event(Timestamp(5.0), Event::TaskArrival(w.tasks[0]))
            .unwrap();
        let mut doomed = shared.clone();
        let crash = std::thread::spawn(move || {
            assert!(matches!(doomed.poll(), SourcePoll::Ready(t, _) if t.0 == 0.0));
            panic!("injected pump crash");
        });
        assert!(crash.join().is_err());
        // The second event queued in the channel survives the crash.
        let mut recovered = shared.clone();
        assert_eq!(recovered.remaining(), 1);
        assert!(matches!(recovered.poll(), SourcePoll::Ready(t, _) if t.0 == 5.0));
        handle.close();
        assert_eq!(recovered.poll(), SourcePoll::Exhausted);
    }

    #[test]
    fn net_source_works_across_threads() {
        let (handle, mut source) = NetSource::channel();
        let w = workload();
        let producer = std::thread::spawn(move || {
            for (i, task) in w.tasks.iter().enumerate() {
                handle
                    .push_event(Timestamp(i as f64), Event::TaskArrival(*task))
                    .unwrap();
            }
        });
        let mut seen = 0;
        while let SourcePoll::Ready(..) = source.poll() {
            seen += 1;
        }
        producer.join().unwrap();
        assert_eq!(seen, 2);
    }
}
