//! Time primitives used across the workspace.
//!
//! All times are represented as `f64` seconds since an arbitrary experiment
//! epoch (the start of the simulated trace). The paper manipulates three
//! temporal quantities: absolute instants (publication/expiration/online/offline
//! times and arrival times from Eq. 1), durations (travel times, availability
//! window lengths `off − on`, valid times `e − p`) and half-open intervals
//! (`[t, t + ΔT)` occurrence buckets of the task multivariate time series).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An absolute instant, in seconds since the experiment epoch.
///
/// `Timestamp` is a thin newtype over `f64` so that instants and durations
/// cannot be mixed up accidentally: subtracting two timestamps yields a
/// [`Duration`], adding a [`Duration`] to a timestamp yields a timestamp, and
/// adding two timestamps does not compile.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Timestamp(pub f64);

/// A span of time, in seconds.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Duration(pub f64);

impl Timestamp {
    /// The experiment epoch (t = 0).
    pub const ZERO: Timestamp = Timestamp(0.0);

    /// Returns the raw number of seconds since the epoch.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// Returns the later of `self` and `other`.
    #[inline]
    pub fn max(self, other: Timestamp) -> Timestamp {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of `self` and `other`.
    #[inline]
    pub fn min(self, other: Timestamp) -> Timestamp {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Whether this timestamp is a finite, non-NaN value.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }
}

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0.0);

    /// Builds a duration from seconds.
    #[inline]
    pub fn from_secs(secs: f64) -> Duration {
        Duration(secs)
    }

    /// Builds a duration from minutes.
    #[inline]
    pub fn from_mins(mins: f64) -> Duration {
        Duration(mins * 60.0)
    }

    /// Builds a duration from hours (the paper sweeps availability windows in
    /// hours, e.g. `off − on ∈ {0.25, 0.5, 0.75, 1, 1.25}` h).
    #[inline]
    pub fn from_hours(hours: f64) -> Duration {
        Duration(hours * 3600.0)
    }

    /// Raw seconds of this duration.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// Whether the duration is non-negative (durations produced by travel
    /// models and window arithmetic should always be).
    #[inline]
    pub fn is_non_negative(self) -> bool {
        self.0 >= 0.0
    }

    /// Returns the larger of two durations.
    #[inline]
    pub fn max(self, other: Duration) -> Duration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<Duration> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Timestamp {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn sub(self, rhs: Duration) -> Timestamp {
        Timestamp(self.0 - rhs.0)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Timestamp) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Duration {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign<Duration> for Duration {
    #[inline]
    fn sub_assign(&mut self, rhs: Duration) {
        self.0 -= rhs.0;
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

/// A half-open time interval `[start, end)`.
///
/// Used for the ΔT occurrence buckets of the task multivariate time series
/// (Eq. 2) and for worker availability windows clipped to the horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimeInterval {
    /// Inclusive start of the interval.
    pub start: Timestamp,
    /// Exclusive end of the interval.
    pub end: Timestamp,
}

impl TimeInterval {
    /// Creates a new interval. `end` may equal `start` (empty interval) but
    /// must not precede it.
    #[inline]
    pub fn new(start: Timestamp, end: Timestamp) -> TimeInterval {
        debug_assert!(end.0 >= start.0, "interval end precedes start");
        TimeInterval { start, end }
    }

    /// Length of the interval.
    #[inline]
    pub fn length(&self) -> Duration {
        self.end - self.start
    }

    /// Whether the interval contains the instant `t` (`start <= t < end`).
    #[inline]
    pub fn contains(&self, t: Timestamp) -> bool {
        t.0 >= self.start.0 && t.0 < self.end.0
    }

    /// Whether the interval is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.end.0 <= self.start.0
    }

    /// Intersection of two intervals, or `None` when they do not overlap.
    pub fn intersect(&self, other: &TimeInterval) -> Option<TimeInterval> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if end.0 > start.0 {
            Some(TimeInterval { start, end })
        } else {
            None
        }
    }

    /// Whether two intervals overlap on a set of positive measure.
    #[inline]
    pub fn overlaps(&self, other: &TimeInterval) -> bool {
        self.intersect(other).is_some()
    }

    /// Splits the interval into `n` equal consecutive sub-intervals.
    ///
    /// Used by the time-series builder to carve a vector of `k` ΔT buckets out
    /// of a `kΔT` window.
    pub fn split(&self, n: usize) -> Vec<TimeInterval> {
        assert!(n > 0, "cannot split an interval into zero pieces");
        let step = self.length().seconds() / n as f64;
        (0..n)
            .map(|i| {
                TimeInterval::new(
                    self.start + Duration(step * i as f64),
                    self.start + Duration(step * (i + 1) as f64),
                )
            })
            .collect()
    }
}

impl fmt::Display for TimeInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:.3}, {:.3})", self.start.0, self.end.0)
    }
}

/// Total ordering helper for timestamps (`f64` is only `PartialOrd`).
///
/// NaN timestamps are considered greater than every finite timestamp so that
/// sorting pushes them to the end, where validation will reject them.
#[inline]
pub fn cmp_timestamps(a: Timestamp, b: Timestamp) -> std::cmp::Ordering {
    // datawa-lint: allow(unchecked-float-ordering) -- this IS the designated total-order helper; the unwrap_or_else arm below defines the NaN ordering
    a.0.partial_cmp(&b.0).unwrap_or_else(|| {
        if a.0.is_nan() && b.0.is_nan() {
            std::cmp::Ordering::Equal
        } else if a.0.is_nan() {
            std::cmp::Ordering::Greater
        } else {
            std::cmp::Ordering::Less
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic_produces_durations() {
        let a = Timestamp(10.0);
        let b = Timestamp(4.0);
        assert_eq!(a - b, Duration(6.0));
        assert_eq!(b + Duration(6.0), a);
        assert_eq!(a - Duration(10.0), Timestamp::ZERO);
    }

    #[test]
    fn duration_constructors_convert_units() {
        assert_eq!(Duration::from_mins(2.0), Duration(120.0));
        assert_eq!(Duration::from_hours(0.5), Duration(1800.0));
        assert_eq!(Duration::from_secs(7.0), Duration(7.0));
    }

    #[test]
    fn interval_contains_is_half_open() {
        let iv = TimeInterval::new(Timestamp(1.0), Timestamp(2.0));
        assert!(iv.contains(Timestamp(1.0)));
        assert!(iv.contains(Timestamp(1.999)));
        assert!(!iv.contains(Timestamp(2.0)));
        assert!(!iv.contains(Timestamp(0.999)));
    }

    #[test]
    fn interval_intersection() {
        let a = TimeInterval::new(Timestamp(0.0), Timestamp(10.0));
        let b = TimeInterval::new(Timestamp(5.0), Timestamp(15.0));
        let c = a.intersect(&b).expect("intervals overlap");
        assert_eq!(c.start, Timestamp(5.0));
        assert_eq!(c.end, Timestamp(10.0));
        let d = TimeInterval::new(Timestamp(10.0), Timestamp(12.0));
        assert!(
            a.intersect(&d).is_none(),
            "touching intervals do not overlap"
        );
    }

    #[test]
    fn interval_split_covers_the_interval() {
        let iv = TimeInterval::new(Timestamp(0.0), Timestamp(9.0));
        let parts = iv.split(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0].start, Timestamp(0.0));
        assert_eq!(parts[2].end, Timestamp(9.0));
        let total: f64 = parts.iter().map(|p| p.length().seconds()).sum();
        assert!((total - 9.0).abs() < 1e-9);
    }

    #[test]
    fn cmp_timestamps_handles_nan() {
        use std::cmp::Ordering;
        assert_eq!(
            cmp_timestamps(Timestamp(1.0), Timestamp(2.0)),
            Ordering::Less
        );
        assert_eq!(
            cmp_timestamps(Timestamp(f64::NAN), Timestamp(2.0)),
            Ordering::Greater
        );
        assert_eq!(
            cmp_timestamps(Timestamp(f64::NAN), Timestamp(f64::NAN)),
            Ordering::Equal
        );
    }

    #[test]
    fn min_max_helpers() {
        assert_eq!(Timestamp(3.0).max(Timestamp(5.0)), Timestamp(5.0));
        assert_eq!(Timestamp(3.0).min(Timestamp(5.0)), Timestamp(3.0));
        assert_eq!(Duration(3.0).max(Duration(5.0)), Duration(5.0));
    }
}
