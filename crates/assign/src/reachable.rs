//! Reachable tasks (§IV-A.1) and the Worker Dependency Graph (§IV-A.2).

use crate::config::AssignConfig;
use datawa_core::{TaskId, TaskStore, Timestamp, WorkerId, WorkerStore};
use datawa_graph::UnGraph;
use std::collections::HashMap;

/// The reachable task sets `RS_w` of a group of workers at one planning
/// instant.
#[derive(Debug, Clone, Default)]
pub struct ReachableSets {
    /// `RS_w` per worker, nearest-first, capped at
    /// [`AssignConfig::max_reachable_per_worker`].
    pub per_worker: HashMap<WorkerId, Vec<TaskId>>,
}

impl ReachableSets {
    /// Reachable tasks of `worker` (empty slice when none).
    pub fn of(&self, worker: WorkerId) -> &[TaskId] {
        self.per_worker
            .get(&worker)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Total number of (worker, task) reachability pairs.
    pub fn pair_count(&self) -> usize {
        self.per_worker.values().map(Vec::len).sum()
    }

    /// Average number of reachable tasks per worker (the paper's `|RS|`).
    pub fn mean_reachable(&self) -> f64 {
        if self.per_worker.is_empty() {
            0.0
        } else {
            self.pair_count() as f64 / self.per_worker.len() as f64
        }
    }
}

/// Computes the reachable task set of every listed worker over the candidate
/// tasks (§IV-A.1 constraints i–iii), nearest-first and capped by the config.
pub fn reachable_tasks(
    worker_ids: &[WorkerId],
    candidate_tasks: &[TaskId],
    workers: &WorkerStore,
    tasks: &TaskStore,
    config: &AssignConfig,
    now: Timestamp,
) -> ReachableSets {
    let mut per_worker = HashMap::with_capacity(worker_ids.len());
    for &wid in worker_ids {
        let worker = workers.get(wid);
        let mut reachable: Vec<(TaskId, f64)> = Vec::new();
        for &tid in candidate_tasks {
            let task = tasks.get(tid);
            if task.is_expired_at(now) {
                continue;
            }
            if worker.can_reach(task, &config.travel, now) {
                let d = config
                    .travel
                    .travel_distance(&worker.location, &task.location);
                reachable.push((tid, d));
            }
        }
        // `total_cmp`, not `partial_cmp(..).unwrap_or(Equal)`: a NaN distance
        // must not silently compare Equal and scramble the nearest-first
        // truncation below (the plan cache re-sorts with the identical
        // comparator and must agree bitwise).
        reachable.sort_by(|a, b| a.1.total_cmp(&b.1));
        reachable.truncate(config.max_reachable_per_worker);
        per_worker.insert(wid, reachable.into_iter().map(|(t, _)| t).collect());
    }
    ReachableSets { per_worker }
}

/// Builds the Worker Dependency Graph: one node per listed worker, an edge
/// between two workers whenever their reachable task sets intersect
/// (§IV-A.2). Returns the graph together with the worker id carried by each
/// node index.
///
/// The construction inverts the reachable sets into a task → workers index
/// and links co-reachers per task, instead of testing all `O(|W|²)` worker
/// pairs for set intersection: with the per-worker reachable cap `k` this is
/// `O(Σ_task (co-reachers)²)`, which on spatially spread instances is near
/// linear in `|W|·k` — the graph itself is identical either way, only the
/// cost of producing it changes (it is the serial step ahead of the
/// partition-parallel search, so it must not dominate the planning instant).
pub fn build_worker_dependency_graph(
    worker_ids: &[WorkerId],
    reachable: &ReachableSets,
) -> (UnGraph, Vec<WorkerId>) {
    let mut graph = UnGraph::new(worker_ids.len());
    let mut by_task: HashMap<TaskId, Vec<usize>> = HashMap::new();
    for (i, &w) in worker_ids.iter().enumerate() {
        for &t in reachable.of(w) {
            by_task.entry(t).or_default().push(i);
        }
    }
    // Pairs sharing several tasks come up once per shared task; the
    // `has_edge` guard makes the duplicates a single adjacency lookup
    // instead of two idempotent set inserts, with no transient memory
    // beyond the graph itself (the co-reacher lists of a hotspot can cover
    // most worker pairs, so materialising the pair list would be quadratic
    // in workers).
    // datawa-lint: allow(unordered-iteration) -- edge accumulation into BTreeSet adjacency is commutative; the final graph is independent of visit order
    for co_reachers in by_task.values() {
        for (a, &u) in co_reachers.iter().enumerate() {
            for &v in &co_reachers[a + 1..] {
                if !graph.has_edge(u, v) {
                    graph.add_edge(u, v);
                }
            }
        }
    }
    (graph, worker_ids.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use datawa_core::{Location, Task, Worker};

    fn fixture() -> (WorkerStore, TaskStore, AssignConfig) {
        let mut workers = WorkerStore::new();
        // Two workers near the origin, one far away.
        workers.insert(Worker::new(
            WorkerId(0),
            Location::new(0.0, 0.0),
            2.0,
            Timestamp(0.0),
            Timestamp(100.0),
        ));
        workers.insert(Worker::new(
            WorkerId(0),
            Location::new(1.0, 0.0),
            2.0,
            Timestamp(0.0),
            Timestamp(100.0),
        ));
        workers.insert(Worker::new(
            WorkerId(0),
            Location::new(50.0, 50.0),
            2.0,
            Timestamp(0.0),
            Timestamp(100.0),
        ));
        let mut tasks = TaskStore::new();
        tasks.insert(Task::new(
            TaskId(0),
            Location::new(0.5, 0.0),
            Timestamp(0.0),
            Timestamp(50.0),
        ));
        tasks.insert(Task::new(
            TaskId(0),
            Location::new(1.5, 0.0),
            Timestamp(0.0),
            Timestamp(50.0),
        ));
        tasks.insert(Task::new(
            TaskId(0),
            Location::new(51.0, 50.0),
            Timestamp(0.0),
            Timestamp(50.0),
        ));
        (workers, tasks, AssignConfig::unit_speed())
    }

    #[test]
    fn reachable_respects_distance_and_sorts_nearest_first() {
        let (workers, tasks, config) = fixture();
        let wids: Vec<WorkerId> = workers.ids().collect();
        let tids: Vec<TaskId> = tasks.ids().collect();
        let rs = reachable_tasks(&wids, &tids, &workers, &tasks, &config, Timestamp(0.0));
        assert_eq!(rs.of(WorkerId(0)), &[TaskId(0), TaskId(1)]);
        assert_eq!(rs.of(WorkerId(1)), &[TaskId(0), TaskId(1)]);
        assert_eq!(rs.of(WorkerId(2)), &[TaskId(2)]);
        assert!((rs.mean_reachable() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn expired_tasks_are_not_reachable() {
        let (workers, tasks, config) = fixture();
        let wids: Vec<WorkerId> = workers.ids().collect();
        let tids: Vec<TaskId> = tasks.ids().collect();
        let rs = reachable_tasks(&wids, &tids, &workers, &tasks, &config, Timestamp(60.0));
        assert!(rs.of(WorkerId(0)).is_empty());
        assert_eq!(rs.pair_count(), 0);
    }

    #[test]
    fn cap_limits_the_reachable_set() {
        let (workers, tasks, mut config) = fixture();
        config.max_reachable_per_worker = 1;
        let wids: Vec<WorkerId> = workers.ids().collect();
        let tids: Vec<TaskId> = tasks.ids().collect();
        let rs = reachable_tasks(&wids, &tids, &workers, &tasks, &config, Timestamp(0.0));
        assert_eq!(rs.of(WorkerId(0)), &[TaskId(0)]); // nearest kept
    }

    #[test]
    fn dependency_graph_links_workers_sharing_tasks() {
        let (workers, tasks, config) = fixture();
        let wids: Vec<WorkerId> = workers.ids().collect();
        let tids: Vec<TaskId> = tasks.ids().collect();
        let rs = reachable_tasks(&wids, &tids, &workers, &tasks, &config, Timestamp(0.0));
        let (graph, mapping) = build_worker_dependency_graph(&wids, &rs);
        assert_eq!(mapping.len(), 3);
        assert!(graph.has_edge(0, 1), "workers 0 and 1 share tasks");
        assert!(!graph.has_edge(0, 2));
        assert!(!graph.has_edge(1, 2));
        assert_eq!(graph.connected_components().len(), 2);
    }

    #[test]
    fn empty_inputs_produce_empty_outputs() {
        let (workers, tasks, config) = fixture();
        let rs = reachable_tasks(&[], &[], &workers, &tasks, &config, Timestamp(0.0));
        assert_eq!(rs.pair_count(), 0);
        assert_eq!(rs.mean_reachable(), 0.0);
        let (graph, mapping) = build_worker_dependency_graph(&[], &rs);
        assert_eq!(graph.node_count(), 0);
        assert!(mapping.is_empty());
    }
}
