//! Planning partitions: the independent subproblems of one planning instant.
//!
//! Worker dependency separation (§IV-A.2) already proves that different root
//! subtrees of the cluster tree share no workers and no reachable tasks
//! (`ClusterTree::verify_sibling_independence`). A [`Partition`] materialises
//! one such subtree as a self-contained subproblem — its workers, its
//! candidate-task universe, and the root it hangs off — so the search can run
//! every partition on its own thread with a partition-local available-task
//! set and still produce exactly the plan the serial root-by-root sweep
//! produced.
//!
//! Determinism: partitions are numbered by their root's position in
//! [`ClusterTree::roots`] (itself deterministic), each partition's result
//! depends only on its own inputs, and the planner merges results in
//! partition-index order — never in thread-completion order. The assignment
//! is therefore bitwise identical for every thread count.
//!
//! Identity across instants: a partition has no persistent name — its index
//! changes whenever the dependency graph reshapes — so the incremental plan
//! cache (see [`crate::cache`]) identifies it by *content fingerprint*
//! instead: its member workers (with their exact kinematic state) plus
//! their reachable task lists in stable real-id space. Two instants that
//! produce a content-identical partition produce the same search output, no
//! matter where in the tree it landed. On the incremental path, workers
//! with empty reachable sets are excluded *before* the graph is built (each
//! would form a trivial partition assigning nothing — they are counted as
//! reused instead of materialised); the full path below keeps them as
//! trivial partitions, and both paths assign such workers nothing.

use crate::reachable::ReachableSets;
use datawa_core::{TaskId, WorkerId};
use datawa_graph::ClusterTree;
use std::collections::HashSet;

/// One independent planning subproblem: the workers of a single cluster-tree
/// root subtree plus the union of their reachable tasks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Position of this partition's root in [`ClusterTree::roots`]; also the
    /// deterministic merge order of partition results.
    pub index: usize,
    /// The root node (index into [`ClusterTree::nodes`]) of the subtree.
    pub root: usize,
    /// Workers of the subtree, in subtree-member order (sorted graph-node
    /// order mapped through the worker mapping).
    pub worker_ids: Vec<WorkerId>,
    /// The candidate-task universe of this partition: the union of its
    /// workers' reachable sets, ascending and deduplicated. Disjoint from
    /// every other partition's universe by sibling independence.
    pub tasks: Vec<TaskId>,
}

impl Partition {
    /// The partition's available-task set, pre-sized to its task universe.
    pub fn task_set(&self) -> HashSet<TaskId> {
        let mut set = HashSet::with_capacity(self.tasks.len());
        set.extend(self.tasks.iter().copied());
        set
    }
}

/// Splits a cluster tree into one [`Partition`] per root subtree.
///
/// `mapping[i]` is the worker id of graph node `i` (as produced by
/// `build_worker_dependency_graph`); `reachable` supplies each worker's
/// candidate tasks. Workers with empty reachable sets still form (trivial)
/// partitions, so every planned worker belongs to exactly one partition.
pub fn split_cluster_tree(
    tree: &ClusterTree,
    mapping: &[WorkerId],
    reachable: &ReachableSets,
) -> Vec<Partition> {
    let mut partitions = Vec::with_capacity(tree.roots.len());
    for (index, &root) in tree.roots.iter().enumerate() {
        let worker_ids: Vec<WorkerId> = tree
            .subtree_members(root)
            .into_iter()
            .map(|i| mapping[i])
            .collect();
        let mut tasks: Vec<TaskId> = worker_ids
            .iter()
            .flat_map(|&w| reachable.of(w).iter().copied())
            .collect();
        tasks.sort_unstable();
        tasks.dedup();
        partitions.push(Partition {
            index,
            root,
            worker_ids,
            tasks,
        });
    }
    partitions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AssignConfig;
    use crate::reachable::{build_worker_dependency_graph, reachable_tasks};
    use datawa_core::{Location, Task, TaskStore, Timestamp, Worker, WorkerStore};

    /// Two spatially separated clusters of workers/tasks plus one isolated
    /// worker that can reach nothing.
    fn fixture() -> (WorkerStore, TaskStore) {
        let mut workers = WorkerStore::new();
        for x in [0.0, 1.0, 40.0, 41.0, 500.0] {
            workers.insert(Worker::new(
                WorkerId(0),
                Location::new(x, 0.0),
                3.0,
                Timestamp(0.0),
                Timestamp(100.0),
            ));
        }
        let mut tasks = TaskStore::new();
        for x in [0.5, 1.5, 40.5] {
            tasks.insert(Task::new(
                TaskId(0),
                Location::new(x, 0.0),
                Timestamp(0.0),
                Timestamp(90.0),
            ));
        }
        (workers, tasks)
    }

    fn split(workers: &WorkerStore, tasks: &TaskStore) -> Vec<Partition> {
        let config = AssignConfig::unit_speed();
        let wids: Vec<WorkerId> = workers.ids().collect();
        let tids: Vec<TaskId> = tasks.ids().collect();
        let reachable = reachable_tasks(&wids, &tids, workers, tasks, &config, Timestamp(0.0));
        let (graph, mapping) = build_worker_dependency_graph(&wids, &reachable);
        let tree = datawa_graph::ClusterTree::build(&graph);
        split_cluster_tree(&tree, &mapping, &reachable)
    }

    #[test]
    fn partitions_cover_every_worker_exactly_once() {
        let (workers, tasks) = fixture();
        let partitions = split(&workers, &tasks);
        let mut covered: Vec<WorkerId> = partitions
            .iter()
            .flat_map(|p| p.worker_ids.iter().copied())
            .collect();
        covered.sort_unstable();
        assert_eq!(covered, workers.ids().collect::<Vec<_>>());
        // Partition indices are dense and ordered.
        for (i, p) in partitions.iter().enumerate() {
            assert_eq!(p.index, i);
        }
    }

    #[test]
    fn partition_task_universes_are_pairwise_disjoint() {
        let (workers, tasks) = fixture();
        let partitions = split(&workers, &tasks);
        assert!(partitions.len() >= 3, "two clusters + isolated worker");
        let mut seen = HashSet::new();
        for p in &partitions {
            for &t in &p.tasks {
                assert!(seen.insert(t), "{t:?} appears in two partitions");
            }
        }
        // Every open task reachable by someone is in some partition.
        assert_eq!(seen.len(), tasks.len());
    }

    #[test]
    fn isolated_worker_forms_a_trivial_partition() {
        let (workers, tasks) = fixture();
        let partitions = split(&workers, &tasks);
        let trivial = partitions
            .iter()
            .find(|p| p.worker_ids == vec![WorkerId(4)])
            .expect("the far worker is its own partition");
        assert!(trivial.tasks.is_empty());
        assert!(trivial.task_set().is_empty());
    }
}
