//! Quickstart: generate a small synthetic ride-hailing trace, train the DDGNN
//! demand predictor on its historical hour, and run the full DATA-WA pipeline
//! (prediction → predicted tasks → TVF → adaptive assignment), comparing it
//! against the non-predictive DTA baseline.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use datawa::prelude::*;

fn main() {
    // 5 % of the Yueche-like preset keeps this example in the seconds range.
    let trace = SyntheticTrace::generate(TraceSpec::yueche().scaled(0.05));
    println!(
        "trace: {} workers, {} tasks over {:.0} minutes ({} historical tasks for training)",
        trace.workers.len(),
        trace.tasks.len(),
        trace.spec.horizon / 60.0,
        trace.history_tasks.len(),
    );

    let config = PipelineConfig {
        training: TrainingConfig {
            epochs: 4,
            learning_rate: 0.02,
        },
        replan_every: 2,
        ..PipelineConfig::default()
    };

    // 1. Task demand prediction with the proposed DDGNN.
    let cells = (config.grid_cells_per_side * config.grid_cells_per_side) as usize;
    let mut ddgnn = DdgnnPredictor::with_defaults(cells, config.k, 42);
    let (prediction, predicted_tasks) = run_prediction(&mut ddgnn, &trace, &config);
    println!(
        "\n[prediction] {}: AP={:.3}  train={:.1}s  test={:.3}s  predicted_tasks={}",
        prediction.model,
        prediction.average_precision,
        prediction.train_seconds,
        prediction.test_seconds,
        prediction.predicted_tasks,
    );

    // 2. Assignment: DTA (no prediction) vs the full DATA-WA.
    let dta = run_policy(&trace, PolicyKind::Dta, &[], None, &config);
    let tvf = train_tvf_on_prefix(&trace, &config);
    let data_wa = run_policy(
        &trace,
        PolicyKind::DataWa,
        &predicted_tasks,
        Some(tvf),
        &config,
    );

    println!("\n[assignment]");
    for summary in [&dta, &data_wa] {
        println!(
            "  {:<8} assigned={:<5} mean CPU per instance={:.4}s",
            summary.policy, summary.assigned_tasks, summary.mean_cpu_seconds
        );
    }
    println!(
        "\nDATA-WA assigned {} tasks vs {} for DTA, spending {:.0}% of DTA+exact-search planning time.",
        data_wa.assigned_tasks,
        dta.assigned_tasks,
        if dta.mean_cpu_seconds > 0.0 {
            100.0 * data_wa.mean_cpu_seconds / dta.mean_cpu_seconds
        } else {
            100.0
        }
    );
}
