//! The open-loop session API: live ingest, incremental advancement and typed
//! assignment decisions.
//!
//! [`Session`] is the engine's primary entry point. Where the historical
//! batch driver required the full [`Workload`] up front and
//! blocked until the queue drained, a session stays open: the caller ingests
//! events as they arrive ([`Session::ingest`]), advances simulated time in
//! increments ([`Session::advance_to`]), inspects the live state mid-stream
//! ([`Session::stats`] / [`Session::snapshot`]) and receives every
//! assignment decision *as it is made* through a pluggable [`DecisionSink`].
//! Batch [`StreamEngine::run`](crate::StreamEngine::run) is now a thin
//! wrapper over this type: open, ingest everything, drain.
//!
//! Determinism is inherited from the [`EventQueue`]: pending events fire in
//! `(time, class, ingest order)` order regardless of ingest granularity.
//! Feeding a workload event-by-event therefore produces bit-identical
//! outcomes to the batch wrapper (pinned by the workspace
//! `session_equivalence` tests) *provided each event is ingested before the
//! session advances to its timestamp*. Ingesting at exactly the watermark is
//! allowed — but under a time-driven replan interval, a tick due at that
//! instant has then already fired, ahead of where the batch driver's
//! tick-last ordering would put it; drivers that need exact replay (the
//! `datawa-service` sources) keep every advance strictly before the next
//! arrival's timestamp.

use crate::engine::{arrival_triggers_replan, EngineConfig, EngineOutcome, EngineStats};
use crate::event::{Event, EventQueue, ScheduledEvent};
use crate::journal::{EventJournal, JournalError, JournalRecord};
use crate::scenario::Workload;
use datawa_assign::{AdaptiveRunner, ForecastProvider, ForecastStats, RunnerState};
use datawa_core::{Duration, TaskId, Timestamp, WorkerId};
use datawa_obs::{Counter, Gauge, MetricsRegistry, MetricsSnapshot};
use std::sync::mpsc::Sender;

/// One incremental decision emitted by a session.
///
/// `Dispatch` is the assignment decision proper; the lifecycle variants
/// surface the two ways supply/demand leaves the system so a live consumer
/// can track unserved losses without polling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Decision {
    /// A worker departs for a task (ids are the run's dense store ids).
    Dispatch {
        /// The time instance at which the assignment was decided.
        at: Timestamp,
        /// The dispatched worker.
        worker: WorkerId,
        /// The task it will serve.
        task: TaskId,
        /// When the worker reaches the task.
        eta: Timestamp,
    },
    /// An open task's lifetime ended before any worker served it.
    TaskExpired {
        /// The expiration instant.
        at: Timestamp,
        /// The lost task.
        task: TaskId,
    },
    /// A worker's availability window closed.
    WorkerOffline {
        /// The window-close instant.
        at: Timestamp,
        /// The departing worker.
        worker: WorkerId,
    },
}

impl Decision {
    /// The simulated time of the decision.
    pub fn at(&self) -> Timestamp {
        match self {
            Decision::Dispatch { at, .. }
            | Decision::TaskExpired { at, .. }
            | Decision::WorkerOffline { at, .. } => *at,
        }
    }

    /// Whether this is an assignment (dispatch) decision.
    #[inline]
    pub fn is_dispatch(&self) -> bool {
        matches!(self, Decision::Dispatch { .. })
    }
}

/// A consumer of incremental session output.
///
/// `emit` receives every [`Decision`] in decision order. `observe_event` is
/// an optional hook that sees every processed event (arrivals, lifecycle
/// events and replan ticks) in deterministic firing order — useful for
/// tracing and for pinning the same-instant ordering contract in tests;
/// the default implementation does nothing.
pub trait DecisionSink {
    /// Receives one decision.
    fn emit(&mut self, decision: Decision);

    /// Observes one processed event at its firing time (default: no-op).
    fn observe_event(&mut self, _time: Timestamp, _event: &Event) {}
}

/// A sink that drops everything (batch runs that only need totals).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl DecisionSink for NullSink {
    fn emit(&mut self, _decision: Decision) {}
}

/// A sink that collects decisions into a vector.
#[derive(Debug, Clone, Default)]
pub struct CollectingSink {
    decisions: Vec<Decision>,
}

impl CollectingSink {
    /// Creates an empty collecting sink.
    #[must_use]
    pub fn new() -> CollectingSink {
        CollectingSink::default()
    }

    /// The decisions collected so far, in decision order.
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    /// Number of dispatch (assignment) decisions collected.
    pub fn dispatches(&self) -> usize {
        self.decisions.iter().filter(|d| d.is_dispatch()).count()
    }

    /// Consumes the sink, returning the collected decisions.
    #[must_use]
    pub fn into_decisions(self) -> Vec<Decision> {
        self.decisions
    }
}

impl DecisionSink for CollectingSink {
    fn emit(&mut self, decision: Decision) {
        self.decisions.push(decision);
    }
}

/// A channel-backed sink: every decision is sent to an `mpsc` consumer (for
/// example a logging/serving thread). A hung-up receiver does not fail the
/// session; undeliverable decisions are counted instead — both in the sink's
/// own fields and, when built with [`ChannelSink::with_metrics`], in the
/// observability registry (`stream.sink.undeliverable`), so a dropped
/// consumer shows up in metric snapshots instead of being a silent local
/// tally.
#[derive(Debug)]
pub struct ChannelSink {
    tx: Sender<Decision>,
    sent: usize,
    undeliverable: usize,
    delivered_metric: Counter,
    undeliverable_metric: Counter,
    observed_metric: Counter,
}

impl ChannelSink {
    /// Wraps a channel sender (no metrics; equivalent to
    /// [`ChannelSink::with_metrics`] over a detached registry).
    #[must_use]
    pub fn new(tx: Sender<Decision>) -> ChannelSink {
        ChannelSink::with_metrics(tx, &MetricsRegistry::detached())
    }

    /// Wraps a channel sender and registers the sink's counters:
    /// `stream.sink.delivered` / `stream.sink.undeliverable` per emitted
    /// decision, and `stream.sink.events_observed` for every event the
    /// session shows to [`DecisionSink::observe_event`].
    #[must_use]
    pub fn with_metrics(tx: Sender<Decision>, registry: &MetricsRegistry) -> ChannelSink {
        ChannelSink {
            tx,
            sent: 0,
            undeliverable: 0,
            delivered_metric: registry.counter("stream.sink.delivered"),
            undeliverable_metric: registry.counter("stream.sink.undeliverable"),
            observed_metric: registry.counter("stream.sink.events_observed"),
        }
    }

    /// Decisions successfully handed to the channel.
    pub fn sent(&self) -> usize {
        self.sent
    }

    /// Decisions dropped because the receiver hung up.
    pub fn undeliverable(&self) -> usize {
        self.undeliverable
    }
}

impl DecisionSink for ChannelSink {
    fn emit(&mut self, decision: Decision) {
        match self.tx.send(decision) {
            Ok(()) => {
                self.sent += 1;
                self.delivered_metric.inc();
            }
            Err(_) => {
                self.undeliverable += 1;
                self.undeliverable_metric.inc();
            }
        }
    }

    fn observe_event(&mut self, _time: Timestamp, _event: &Event) {
        self.observed_metric.inc();
    }
}

/// Why [`Session::ingest`] rejected an event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IngestError {
    /// The scheduling time is NaN or infinite.
    NonFiniteTime {
        /// The offending time.
        time: Timestamp,
    },
    /// The event is scheduled before time the session has already advanced
    /// past — it could never fire in order.
    BehindWatermark {
        /// The offending time.
        time: Timestamp,
        /// How far the session has advanced.
        watermark: Timestamp,
    },
    /// The attached [`EventJournal`] failed to record the event (file-backend
    /// I/O failure); the event was **not** ingested, so journal and session
    /// cannot diverge.
    JournalAppend,
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::NonFiniteTime { time } => {
                write!(f, "cannot ingest an event at non-finite time {time}")
            }
            IngestError::BehindWatermark { time, watermark } => write!(
                f,
                "cannot ingest an event at {time}: the session already advanced to {watermark}"
            ),
            IngestError::JournalAppend => write!(
                f,
                "the attached journal failed to record the event; it was not ingested"
            ),
        }
    }
}

impl std::error::Error for IngestError {}

/// A mid-stream view of a session's live state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionSnapshot {
    /// How far simulated time has advanced (`-inf` before the first
    /// [`Session::advance_to`]).
    pub now: Timestamp,
    /// Events still pending in the session queue.
    pub pending_events: usize,
    /// Candidate open tasks tracked by the incremental view.
    pub open_tasks: usize,
    /// Candidate available workers tracked by the incremental view.
    pub available_workers: usize,
    /// Real tasks dispatched so far.
    pub assigned_tasks: usize,
    /// Events processed so far (arrivals + lifecycle + ticks).
    pub events_processed: usize,
    /// Activity counters of the session's [`ForecastProvider`]
    /// (observations, forecast queries, model refreshes).
    pub forecast: ForecastStats,
}

/// An open streaming run: the session owns the event queue and the runner
/// state, and the caller controls time.
///
/// ```
/// use datawa_assign::{AdaptiveRunner, AssignConfig, PolicyKind, StaticForecast};
/// use datawa_core::{Location, Task, TaskId, Timestamp, Worker, WorkerId};
/// use datawa_stream::{CollectingSink, EngineConfig, Event, Session};
///
/// let runner = AdaptiveRunner::new(AssignConfig::unit_speed(), PolicyKind::Dta);
/// let mut sink = CollectingSink::new();
/// let mut forecast = StaticForecast::default(); // no predictions for DTA
/// let mut session = Session::open(&runner, &mut forecast, EngineConfig::default());
///
/// let w = Worker::new(WorkerId(0), Location::new(0.0, 0.0), 5.0, Timestamp(0.0), Timestamp(100.0));
/// let t = Task::new(TaskId(0), Location::new(1.0, 0.0), Timestamp(1.0), Timestamp(50.0));
/// session.ingest(w.on(), Event::WorkerOnline(w)).unwrap();
/// session.advance_to(Timestamp(0.5), &mut sink);
/// session.ingest(t.publication, Event::TaskArrival(t)).unwrap();
/// session.advance_to(Timestamp(2.0), &mut sink);
/// assert_eq!(sink.dispatches(), 1, "decision emitted as soon as it was made");
///
/// let outcome = session.close(&mut sink);
/// assert_eq!(outcome.run.assigned_tasks, 1);
/// ```
pub struct Session<'a, F: ForecastProvider + ?Sized = dyn ForecastProvider + 'a> {
    config: EngineConfig,
    queue: EventQueue,
    state: RunnerState<'a, F>,
    stats: EngineStats,
    arrivals_seen: usize,
    watermark: Timestamp,
    /// The armed time-driven replan tick, if any. Ticks live outside the
    /// queue so a live session can re-arm a chain that died while the queue
    /// was momentarily empty.
    next_tick: Option<Timestamp>,
    dispatches_emitted: usize,
    obs: MetricsRegistry,
    metrics: StreamMetrics,
    /// When attached, every accepted ingest and finite advance target is
    /// recorded for crash recovery (see [`Session::recover`]).
    journal: Option<EventJournal>,
}

/// Pre-resolved stream-layer handles into the session's registry (see the
/// crate-level "Observability" docs for the metric catalogue). Inert when
/// the registry is detached.
struct StreamMetrics {
    /// `stream.ingested_events`: events accepted by [`Session::ingest`].
    ingested_events: Counter,
    /// `stream.events_processed`: events fired (arrivals, lifecycle, ticks).
    events_processed: Counter,
    /// `stream.replan_ticks`: time-driven and explicit replan ticks fired.
    replan_ticks: Counter,
    /// `stream.decisions`: decisions emitted to the sink.
    decisions: Counter,
    /// `stream.queue_depth`: pending events (high-water = ingest burst peak).
    queue_depth: Gauge,
}

impl StreamMetrics {
    fn register(registry: &MetricsRegistry) -> StreamMetrics {
        StreamMetrics {
            ingested_events: registry.counter("stream.ingested_events"),
            events_processed: registry.counter("stream.events_processed"),
            replan_ticks: registry.counter("stream.replan_ticks"),
            decisions: registry.counter("stream.decisions"),
            queue_depth: registry.gauge("stream.queue_depth"),
        }
    }
}

impl<'a, F: ForecastProvider + ?Sized> Session<'a, F> {
    /// Opens a session over `runner`.
    ///
    /// `forecast` is the session's demand-prediction source: every task
    /// arrival processed by the session is routed into it
    /// ([`ForecastProvider::observe`]) and the prediction-aware policies
    /// re-query it at every planning instant. Wrap a precomputed slice in
    /// [`StaticForecast`](datawa_assign::StaticForecast) for the
    /// pre-redesign fixed-oracle behaviour (bit-identical), or pass an
    /// `OnlineForecaster` (from `datawa-predict`) for live re-forecasting.
    ///
    /// Panics on a non-positive or non-finite
    /// [`EngineConfig::replan_interval`] for the same reason
    /// [`StreamEngine::new`](crate::StreamEngine::new) does.
    #[must_use]
    pub fn open(
        runner: &'a AdaptiveRunner,
        forecast: &'a mut F,
        config: EngineConfig,
    ) -> Session<'a, F> {
        let registry = runner.metrics().clone();
        Session::open_with_metrics(runner, forecast, config, &registry)
    }

    /// [`Session::open`] with an explicit observability registry instead of
    /// the runner's own: the session's stream-layer metrics (and its
    /// [`Session::obs_snapshot`]) use `registry`, while the runner state
    /// keeps recording into the runner's registry. Pass the runner's
    /// registry (what [`Session::open`] does) to get one combined snapshot;
    /// pass a different attached registry to keep stream-layer counters
    /// separate (the dispatch service does this when the runner's registry
    /// is detached).
    #[must_use]
    pub fn open_with_metrics(
        runner: &'a AdaptiveRunner,
        forecast: &'a mut F,
        config: EngineConfig,
        registry: &MetricsRegistry,
    ) -> Session<'a, F> {
        if let Some(dt) = config.replan_interval {
            assert!(
                dt.is_finite() && dt > 0.0,
                "replan_interval must be a positive finite number of seconds, got {dt}"
            );
        }
        Session {
            config,
            queue: EventQueue::new(),
            state: runner.start(forecast),
            stats: EngineStats::default(),
            arrivals_seen: 0,
            watermark: Timestamp(f64::NEG_INFINITY),
            next_tick: None,
            dispatches_emitted: 0,
            obs: registry.clone(),
            metrics: StreamMetrics::register(registry),
            journal: None,
        }
    }

    /// Attaches `journal`: every subsequently accepted [`Session::ingest`]
    /// and every finite [`Session::advance_to`] target is appended, in call
    /// order, so an interrupted session can be rebuilt bit-for-bit by
    /// [`Session::recover`]. Appends happen *before* the session mutates, and
    /// an append failure rejects the ingest — journal and session cannot
    /// diverge.
    pub fn attach_journal(&mut self, journal: EventJournal) {
        self.journal = Some(journal);
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<&EventJournal> {
        self.journal.as_ref()
    }

    /// Rebuilds an interrupted session from its journal: opens a fresh
    /// session, replays every recorded ingest and advance in order (emitting
    /// the reproduced decision prefix to `sink` — wrap it in
    /// [`SkipSink`](crate::SkipSink) to suppress decisions a consumer
    /// already received), then re-attaches the journal so the recovered
    /// session keeps recording. Because the engine is deterministic over its
    /// command sequence, the recovered session is bitwise identical to the
    /// uninterrupted one — same pending queue, same watermark, same armed
    /// tick, same planning state (pinned by `tests/chaos_recovery.rs`).
    ///
    /// # Errors
    ///
    /// Propagates [`JournalError`] from reading the journal; a record the
    /// fresh session rejects (impossible for a journal written through
    /// `ingest`) surfaces as [`JournalError::Replay`].
    pub fn recover(
        runner: &'a AdaptiveRunner,
        forecast: &'a mut F,
        config: EngineConfig,
        journal: EventJournal,
        sink: &mut dyn DecisionSink,
    ) -> Result<Session<'a, F>, JournalError> {
        let records = journal.recovered_records()?;
        let mut session = Session::open(runner, forecast, config);
        for record in records {
            match record {
                JournalRecord::Event(time, event) => {
                    session.ingest(time, event).map_err(JournalError::Replay)?;
                }
                JournalRecord::Advance(time) => {
                    session.advance_to(time, sink);
                }
            }
        }
        session.journal = Some(journal);
        Ok(session)
    }

    /// The observability registry this session records into (detached unless
    /// `DATAWA_OBS=on`, the runner carries an attached registry, or the
    /// session was opened through [`Session::open_with_metrics`]).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.obs
    }

    /// A point-in-time snapshot of every metric in the session's registry
    /// (empty when detached). Includes the assign-layer metrics when the
    /// session records into the runner's registry (the default).
    pub fn obs_snapshot(&self) -> MetricsSnapshot {
        self.obs.snapshot()
    }

    /// The session's engine configuration.
    pub fn config(&self) -> EngineConfig {
        self.config
    }

    /// How far simulated time has advanced (`-inf` before the first
    /// [`Session::advance_to`]).
    pub fn now(&self) -> Timestamp {
        self.watermark
    }

    /// Events pending in the session queue.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Dispatch decisions emitted so far.
    pub fn dispatches_emitted(&self) -> usize {
        self.dispatches_emitted
    }

    /// A snapshot of the engine counters so far (the queue high-water mark is
    /// filled in live, everything else accumulates as events fire).
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            peak_queue_len: self.queue.peak_len(),
            ..self.stats
        }
    }

    /// A mid-stream view of the live state.
    pub fn snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            now: self.watermark,
            pending_events: self.queue.len(),
            open_tasks: self.state.open_candidates(),
            available_workers: self.state.available_candidates(),
            assigned_tasks: self.state.assigned_so_far(),
            events_processed: self.stats.events_processed,
            forecast: self.state.forecast_stats(),
        }
    }

    /// Activity counters of the session's forecast provider so far.
    #[inline]
    pub fn forecast_stats(&self) -> ForecastStats {
        self.state.forecast_stats()
    }

    /// Number of candidate open tasks currently tracked (the demand signal
    /// the sharded engine uses for boundary hand-offs).
    #[inline]
    pub fn open_candidates(&self) -> usize {
        self.state.open_candidates()
    }

    /// The events recorded since the session's last planning instant (the
    /// diagnostic side of incremental replanning; see
    /// [`datawa_assign::DirtySet`]). Each shard of the sharded engine owns
    /// its own session and therefore its own per-shard dirty set.
    #[inline]
    pub fn dirty_set(&self) -> &datawa_assign::DirtySet {
        self.state.dirty_set()
    }

    /// Schedules one event. Arrival events may be ingested at any time at or
    /// after the watermark; their lifetime-closing events
    /// ([`Event::TaskExpiration`] / [`Event::WorkerOffline`]) are scheduled
    /// automatically when the arrival fires. An explicitly ingested
    /// [`Event::ReplanTick`] forces a one-shot re-plan at its time (it does
    /// not re-arm).
    pub fn ingest(&mut self, time: Timestamp, event: Event) -> Result<(), IngestError> {
        if !time.is_finite() {
            return Err(IngestError::NonFiniteTime { time });
        }
        if time.0 < self.watermark.0 {
            return Err(IngestError::BehindWatermark {
                time,
                watermark: self.watermark,
            });
        }
        if let Some(journal) = &self.journal {
            if journal.append_event(time, &event).is_err() {
                return Err(IngestError::JournalAppend);
            }
        }
        self.queue.push(time, event);
        self.metrics.ingested_events.inc();
        self.metrics.queue_depth.set(self.queue.len() as i64);
        Ok(())
    }

    /// Ingests a whole workload: every worker at its online time, every task
    /// at its publication time. Returns the number of events ingested.
    ///
    /// # Errors
    ///
    /// Fails on the first entity whose online/publication time is non-finite
    /// or behind the watermark (events ingested before the failure stay
    /// scheduled).
    pub fn ingest_workload(&mut self, workload: &Workload) -> Result<usize, IngestError> {
        for w in &workload.workers {
            self.ingest(w.on(), Event::WorkerOnline(*w))?;
        }
        for t in &workload.tasks {
            self.ingest(t.publication, Event::TaskArrival(*t))?;
        }
        Ok(workload.arrival_count())
    }

    /// Advances simulated time to `target`, firing every pending event and
    /// armed replan tick due at or before it, in deterministic `(time,
    /// class, ingest order)` order, and emitting decisions to `sink` as they
    /// are made. Returns the number of events processed by this call.
    pub fn advance_to(&mut self, target: Timestamp, sink: &mut dyn DecisionSink) -> usize {
        // Journal the advance before any event fires so replay issues the
        // identical call sequence. Only finite targets are recorded: the
        // close-time drain to +inf must not poison a recovered session's
        // watermark. A failed append (file I/O) is best-effort here — the
        // in-memory backend cannot fail, and advance targets are
        // reconstructible from the admission protocol if a file write drops.
        if target.is_finite() {
            if let Some(journal) = &self.journal {
                let _ = journal.append_advance(target);
            }
        }
        self.arm_tick();
        let mut processed = 0usize;
        loop {
            let event_due = self.queue.peek_time().filter(|t| t.0 <= target.0);
            let tick_due = self.next_tick.filter(|t| t.0 <= target.0);
            match (event_due, tick_due) {
                (None, None) => break,
                (Some(et), Some(tt)) if tt.0 < et.0 => self.fire_tick(tt, sink),
                (None, Some(tt)) => self.fire_tick(tt, sink),
                (Some(_), _) => {
                    // datawa-lint: allow(unwrap-in-hot-path) -- pop follows a successful peek with no intervening mutation
                    let scheduled = self.queue.pop().expect("peeked event vanished");
                    self.process(scheduled, sink);
                }
            }
            processed += 1;
        }
        if target.0 > self.watermark.0 {
            self.watermark = target;
        }
        processed
    }

    /// Forces an immediate re-plan at `now` (outside the tick chain), for
    /// example when an external controller detects demand drift. Counts
    /// toward the outcome's planning statistics but not toward the queue's
    /// event counters.
    pub fn force_replan(&mut self, now: Timestamp, sink: &mut dyn DecisionSink) {
        self.state.step(now, true);
        self.emit_dispatches(sink);
        if now.0 > self.watermark.0 {
            self.watermark = now;
        }
    }

    /// Closes the session: drains every remaining event (and the tick chain,
    /// which dies with the queue), emits the final decisions to `sink` and
    /// returns the combined outcome.
    #[must_use = "the outcome carries the run totals"]
    pub fn close(mut self, sink: &mut dyn DecisionSink) -> EngineOutcome {
        self.advance_to(Timestamp(f64::INFINITY), sink);
        self.stats.peak_queue_len = self.queue.peak_len();
        let run = self.state.finish();
        self.stats.peak_partitions = run.peak_partitions;
        self.stats.peak_partition_workers = run.peak_partition_workers;
        self.stats.peak_pool_occupancy = run.peak_pool_occupancy;
        EngineOutcome {
            run,
            stats: self.stats,
        }
    }

    /// Arms (or re-arms) the time-driven tick chain off the earliest pending
    /// event, mirroring the batch driver: the first tick fires one interval
    /// after the earliest scheduled event. A chain that died while the queue
    /// was empty re-arms here once new events are ingested.
    fn arm_tick(&mut self) {
        if let (Some(dt), None) = (self.config.replan_interval, self.next_tick) {
            if let Some(first) = self.queue.peek_time() {
                self.next_tick = Some(first + Duration(dt));
            }
        }
    }

    /// Fires the armed time-driven tick at `tt` and re-arms it while any
    /// event is still pending (the chain dies with the queue, so draining
    /// always terminates — exactly the batch driver's semantics).
    fn fire_tick(&mut self, tt: Timestamp, sink: &mut dyn DecisionSink) {
        self.stats.events_processed += 1;
        self.stats.replan_ticks += 1;
        self.metrics.events_processed.inc();
        self.metrics.replan_ticks.inc();
        sink.observe_event(tt, &Event::ReplanTick);
        self.state.step(tt, true);
        self.emit_dispatches(sink);
        self.next_tick = match self.config.replan_interval {
            Some(dt) if !self.queue.is_empty() => Some(tt + Duration(dt)),
            _ => None,
        };
    }

    fn process(&mut self, scheduled: ScheduledEvent, sink: &mut dyn DecisionSink) {
        let now = scheduled.time;
        self.stats.events_processed += 1;
        self.metrics.events_processed.inc();
        sink.observe_event(now, &scheduled.event);
        match scheduled.event {
            Event::WorkerOnline(w) => {
                self.stats.arrivals += 1;
                self.state.record_event();
                let off = w.off();
                let wid = self.state.insert_worker(w);
                // An always-available worker (infinite window) is legal in
                // the core model; its death event simply never fires.
                if off.is_finite() {
                    self.queue.push(off, Event::WorkerOffline(wid));
                }
                let replan = arrival_triggers_replan(&self.config, self.arrivals_seen);
                self.arrivals_seen += 1;
                self.state.step(now, replan);
                self.emit_dispatches(sink);
            }
            Event::TaskArrival(t) => {
                self.stats.arrivals += 1;
                self.state.record_event();
                let expiration = t.expiration;
                let tid = self.state.insert_task(t);
                // Never-expiring tasks stay in the open view until served
                // (or lazily pruned); no expiration event to schedule.
                if expiration.is_finite() {
                    self.queue.push(expiration, Event::TaskExpiration(tid));
                }
                let replan = arrival_triggers_replan(&self.config, self.arrivals_seen);
                self.arrivals_seen += 1;
                self.state.step(now, replan);
                self.emit_dispatches(sink);
            }
            Event::TaskExpiration(tid) => {
                self.stats.expirations += 1;
                if self.state.expire_task(tid) {
                    self.stats.expired_open += 1;
                    self.metrics.decisions.inc();
                    sink.emit(Decision::TaskExpired { at: now, task: tid });
                }
            }
            Event::WorkerOffline(wid) => {
                self.stats.offline += 1;
                self.state
                    .retire_worker(wid, self.config.release_on_offline);
                self.metrics.decisions.inc();
                sink.emit(Decision::WorkerOffline {
                    at: now,
                    worker: wid,
                });
            }
            Event::ReplanTick => {
                // An explicitly ingested tick: one-shot forced re-plan.
                self.stats.replan_ticks += 1;
                self.metrics.replan_ticks.inc();
                self.state.step(now, true);
                self.emit_dispatches(sink);
            }
        }
        // Arrivals push lifetime-closing events; keep the depth gauge (and
        // its high-water mark) tracking the post-event queue.
        self.metrics.queue_depth.set(self.queue.len() as i64);
    }

    fn emit_dispatches(&mut self, sink: &mut dyn DecisionSink) {
        for d in self.state.take_dispatches() {
            self.dispatches_emitted += 1;
            self.metrics.decisions.inc();
            sink.emit(Decision::Dispatch {
                at: d.decided_at,
                worker: d.worker,
                task: d.task,
                eta: d.eta,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datawa_assign::{AssignConfig, PolicyKind, StaticForecast};
    use datawa_core::{Location, Task, Worker};

    fn worker(x: f64, on: f64, off: f64, d: f64) -> Worker {
        Worker::new(
            WorkerId(0),
            Location::new(x, 0.0),
            d,
            Timestamp(on),
            Timestamp(off),
        )
    }

    fn task(x: f64, p: f64, e: f64) -> Task {
        Task::new(TaskId(0), Location::new(x, 0.0), Timestamp(p), Timestamp(e))
    }

    fn runner(policy: PolicyKind) -> AdaptiveRunner {
        AdaptiveRunner::new(AssignConfig::unit_speed(), policy)
    }

    #[test]
    fn decisions_stream_out_as_time_advances() {
        let r = runner(PolicyKind::Dta);
        let mut sink = CollectingSink::new();
        let mut forecast = StaticForecast::default();
        let mut session = Session::open(&r, &mut forecast, EngineConfig::default());
        session
            .ingest(
                Timestamp(0.0),
                Event::WorkerOnline(worker(0.0, 0.0, 100.0, 5.0)),
            )
            .unwrap();
        session
            .ingest(Timestamp(1.0), Event::TaskArrival(task(1.0, 1.0, 50.0)))
            .unwrap();
        session.advance_to(Timestamp(1.0), &mut sink);
        assert_eq!(sink.dispatches(), 1, "dispatch visible before close");
        assert_eq!(session.dispatches_emitted(), 1);

        // A later arrival, ingested after the first advance, still works.
        session
            .ingest(Timestamp(5.0), Event::TaskArrival(task(2.0, 5.0, 60.0)))
            .unwrap();
        let outcome = session.close(&mut sink);
        assert_eq!(outcome.run.assigned_tasks, 2);
        assert_eq!(sink.dispatches(), 2);
        // One offline + two expirations are lifecycle records, not
        // dispatches; the served tasks never emit TaskExpired.
        let expired = sink
            .decisions()
            .iter()
            .filter(|d| matches!(d, Decision::TaskExpired { .. }))
            .count();
        assert_eq!(expired, 0, "served tasks left the open view at dispatch");
    }

    #[test]
    fn unserved_expiration_is_reported_as_a_decision() {
        let r = runner(PolicyKind::Dta);
        let mut sink = CollectingSink::new();
        let mut forecast = StaticForecast::default();
        let session = {
            let mut s = Session::open(&r, &mut forecast, EngineConfig::ticked(100.0));
            s.ingest(
                Timestamp(0.0),
                Event::WorkerOnline(worker(0.0, 0.0, 50.0, 5.0)),
            )
            .unwrap();
            // Expires at t=3, before the first tick at t=100: never planned.
            s.ingest(Timestamp(1.0), Event::TaskArrival(task(0.5, 1.0, 3.0)))
                .unwrap();
            s
        };
        let outcome = session.close(&mut sink);
        assert_eq!(outcome.run.assigned_tasks, 0);
        assert!(sink
            .decisions()
            .iter()
            .any(|d| matches!(d, Decision::TaskExpired { .. })));
    }

    #[test]
    fn ingest_rejects_times_behind_the_watermark() {
        let r = runner(PolicyKind::Greedy);
        let mut sink = NullSink;
        let mut forecast = StaticForecast::default();
        let mut session = Session::open(&r, &mut forecast, EngineConfig::default());
        session.advance_to(Timestamp(10.0), &mut sink);
        let err = session
            .ingest(Timestamp(5.0), Event::TaskArrival(task(0.0, 5.0, 20.0)))
            .unwrap_err();
        assert!(matches!(err, IngestError::BehindWatermark { .. }));
        let err = session
            .ingest(Timestamp(f64::NAN), Event::ReplanTick)
            .unwrap_err();
        assert!(matches!(err, IngestError::NonFiniteTime { .. }));
        // At the watermark is fine (half-open advance).
        assert!(session
            .ingest(Timestamp(10.0), Event::TaskArrival(task(0.0, 10.0, 20.0)))
            .is_ok());
    }

    #[test]
    fn snapshot_tracks_live_state() {
        let r = runner(PolicyKind::Dta);
        let mut sink = NullSink;
        let mut forecast = StaticForecast::default();
        let mut session = Session::open(&r, &mut forecast, EngineConfig::default());
        session
            .ingest(
                Timestamp(0.0),
                Event::WorkerOnline(worker(0.0, 0.0, 100.0, 5.0)),
            )
            .unwrap();
        session
            .ingest(Timestamp(1.0), Event::TaskArrival(task(9.0, 1.0, 500.0)))
            .unwrap();
        session.advance_to(Timestamp(2.0), &mut sink);
        let snap = session.snapshot();
        assert_eq!(snap.now, Timestamp(2.0));
        assert_eq!(snap.available_workers, 1);
        assert_eq!(snap.open_tasks, 1, "task too far away to serve yet");
        assert_eq!(snap.assigned_tasks, 0);
        assert!(snap.pending_events >= 2, "offline + expiration pending");
    }

    #[test]
    fn tick_chain_rearms_after_a_quiet_period() {
        // The chain dies when the queue empties mid-session; ingesting more
        // work and advancing again must restart time-driven planning.
        let r = runner(PolicyKind::Dta);
        let mut sink = NullSink;
        let mut forecast = StaticForecast::default();
        let mut session = Session::open(&r, &mut forecast, EngineConfig::ticked(2.0));
        session
            .ingest(
                Timestamp(0.0),
                Event::WorkerOnline(worker(0.0, 0.0, 1000.0, 5.0)),
            )
            .unwrap();
        session
            .ingest(Timestamp(1.0), Event::TaskArrival(task(0.5, 1.0, 30.0)))
            .unwrap();
        session.advance_to(Timestamp(40.0), &mut sink);
        let before = session.stats().replan_ticks;
        assert!(before >= 1);
        assert_eq!(session.snapshot().assigned_tasks, 1);

        session
            .ingest(
                Timestamp(100.0),
                Event::TaskArrival(task(1.0, 100.0, 130.0)),
            )
            .unwrap();
        let outcome = session.close(&mut sink);
        assert!(outcome.stats.replan_ticks > before, "chain re-armed");
        assert_eq!(outcome.run.assigned_tasks, 2);
    }

    #[test]
    fn channel_sink_counts_post_disconnect_decisions_and_closes_cleanly() {
        // A consumer hanging up mid-run must not fail the session: every
        // decision made after the disconnect is counted as undeliverable,
        // none are silently lost, and close() still drains to completion.
        let r = runner(PolicyKind::Dta);
        let (tx, rx) = std::sync::mpsc::channel();
        let mut sink = ChannelSink::new(tx);
        let mut forecast = StaticForecast::default();
        let mut session = Session::open(&r, &mut forecast, EngineConfig::default());
        session
            .ingest(
                Timestamp(0.0),
                Event::WorkerOnline(worker(0.0, 0.0, 100.0, 5.0)),
            )
            .unwrap();
        session
            .ingest(Timestamp(1.0), Event::TaskArrival(task(0.5, 1.0, 50.0)))
            .unwrap();
        session.advance_to(Timestamp(1.0), &mut sink);
        let delivered = sink.sent();
        assert_eq!(delivered, 1, "first dispatch reached the live consumer");
        assert_eq!(rx.try_iter().count(), 1);

        // The consumer goes away; the rest of the run keeps deciding.
        drop(rx);
        session
            .ingest(Timestamp(10.0), Event::TaskArrival(task(1.5, 10.0, 60.0)))
            .unwrap();
        session
            .ingest(Timestamp(20.0), Event::TaskArrival(task(2.5, 20.0, 70.0)))
            .unwrap();
        let outcome = session.close(&mut sink);
        assert_eq!(outcome.run.assigned_tasks, 3, "session closed cleanly");
        assert_eq!(sink.sent(), delivered, "nothing delivered after hang-up");
        // Post-disconnect decisions: 2 dispatches + 1 worker-offline + any
        // unserved expirations; every one of them lands in the undeliverable
        // counter, so sent + undeliverable covers the full decision stream.
        assert_eq!(
            sink.undeliverable(),
            2 + 1 + outcome.stats.expired_open,
            "every post-disconnect decision was counted"
        );
    }

    #[test]
    fn journaled_session_recovers_bitwise() {
        use crate::journal::EventJournal;

        let r = runner(PolicyKind::Dta);
        let journal = EventJournal::in_memory();

        // Uninterrupted reference run.
        let mut ref_sink = CollectingSink::new();
        let mut ref_forecast = StaticForecast::default();
        let mut reference = Session::open(&r, &mut ref_forecast, EngineConfig::ticked(2.0));

        // Journaled run, "crashed" after the first advance.
        let mut live_sink = CollectingSink::new();
        let mut live_forecast = StaticForecast::default();
        let mut live = Session::open(&r, &mut live_forecast, EngineConfig::ticked(2.0));
        live.attach_journal(journal.clone());

        let w = Event::WorkerOnline(worker(0.0, 0.0, 100.0, 5.0));
        let t1 = Event::TaskArrival(task(1.0, 1.0, 50.0));
        let t2 = Event::TaskArrival(task(2.0, 6.0, 60.0));
        for (time, event) in [(0.0, w.clone()), (1.0, t1.clone())] {
            live.ingest(Timestamp(time), event.clone()).unwrap();
            reference.ingest(Timestamp(time), event).unwrap();
        }
        live.advance_to(Timestamp(5.0), &mut live_sink);
        reference.advance_to(Timestamp(5.0), &mut ref_sink);
        drop(live); // the crash: session lost, journal survives

        // Recovery replays the prefix; skip what the consumer already saw.
        let mut rec_forecast = StaticForecast::default();
        let mut replay_sink = CollectingSink::new();
        let mut recovered = Session::recover(
            &r,
            &mut rec_forecast,
            EngineConfig::ticked(2.0),
            journal,
            &mut replay_sink,
        )
        .unwrap();
        assert_eq!(
            replay_sink.decisions(),
            live_sink.decisions(),
            "replay reproduces the emitted prefix bitwise"
        );
        assert_eq!(recovered.now(), Timestamp(5.0));
        assert_eq!(recovered.pending(), reference.pending());

        // Both runs continue identically.
        recovered.ingest(Timestamp(6.0), t2.clone()).unwrap();
        reference.ingest(Timestamp(6.0), t2).unwrap();
        let rec_out = recovered.close(&mut replay_sink);
        let ref_out = reference.close(&mut ref_sink);
        assert_eq!(replay_sink.decisions(), ref_sink.decisions());
        assert_eq!(rec_out.run.assigned_tasks, ref_out.run.assigned_tasks);
        assert_eq!(
            rec_out.stats.events_processed,
            ref_out.stats.events_processed
        );
        assert_eq!(rec_out.stats.replan_ticks, ref_out.stats.replan_ticks);
    }

    #[test]
    fn explicit_replan_tick_is_one_shot() {
        let r = runner(PolicyKind::Dta);
        let mut sink = CollectingSink::new();
        // Arrival-driven planning off entirely: only the explicit tick plans.
        let config = EngineConfig {
            replan_every_events: 0,
            replan_interval: None,
            release_on_offline: true,
        };
        let mut forecast = StaticForecast::default();
        let mut session = Session::open(&r, &mut forecast, config);
        session
            .ingest(
                Timestamp(0.0),
                Event::WorkerOnline(worker(0.0, 0.0, 100.0, 5.0)),
            )
            .unwrap();
        session
            .ingest(Timestamp(1.0), Event::TaskArrival(task(0.5, 1.0, 50.0)))
            .unwrap();
        session.ingest(Timestamp(2.0), Event::ReplanTick).unwrap();
        let outcome = session.close(&mut sink);
        assert_eq!(outcome.run.assigned_tasks, 1, "the explicit tick planned");
        assert_eq!(outcome.stats.replan_ticks, 1, "and it did not re-arm");
    }
}
