// Fixture: unchecked-float-ordering. Scanned with `--context assign`
// (a deterministic crate); never compiled.

fn positive(v: &mut Vec<(u32, f64)>) {
    v.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(core::cmp::Ordering::Equal));
}

fn negative_total_cmp(v: &mut Vec<(u32, f64)>) {
    v.sort_by(|a, b| a.1.total_cmp(&b.1));
}

fn suppressed(a: f64, b: f64) -> Option<core::cmp::Ordering> {
    // datawa-lint: allow(unchecked-float-ordering) -- fixture: caller rejects NaN upstream
    a.partial_cmp(&b)
}
