//! Reverse-mode automatic differentiation over [`Matrix`] values.
//!
//! The graph is built dynamically: every operation on a [`Var`] produces a new
//! node that remembers its parents and how to push a gradient back to them.
//! Calling [`Var::backward`] on a scalar node performs a topological sort and
//! accumulates gradients into every parameter node reachable from it.
//!
//! The op set is intentionally small — exactly what the LSTM, Graph-WaveNet
//! and DDGNN predictors need: matmul, element-wise arithmetic, activations,
//! row-softmax, bias broadcast, transpose, temporal unfolding for dilated
//! causal convolutions, concatenation and scalar reductions.

use crate::matrix::Matrix;
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

type BackwardFn = Box<dyn Fn(&Matrix, &[Var])>;

struct Node {
    value: RefCell<Matrix>,
    grad: RefCell<Matrix>,
    parents: Vec<Var>,
    backward: Option<BackwardFn>,
    requires_grad: bool,
}

/// A node in the autograd graph holding a matrix value.
///
/// `Var` is a cheap handle (`Rc`) — cloning shares the underlying node.
#[derive(Clone)]
pub struct Var(Rc<Node>);

impl Var {
    fn new_node(
        value: Matrix,
        parents: Vec<Var>,
        backward: Option<BackwardFn>,
        requires_grad: bool,
    ) -> Var {
        let (r, c) = value.shape();
        Var(Rc::new(Node {
            value: RefCell::new(value),
            grad: RefCell::new(Matrix::zeros(r, c)),
            parents,
            backward,
            requires_grad,
        }))
    }

    /// A leaf that does not require gradients (inputs, targets, constants).
    pub fn constant(value: Matrix) -> Var {
        Var::new_node(value, Vec::new(), None, false)
    }

    /// A trainable leaf; gradients accumulate into it on [`Var::backward`].
    pub fn parameter(value: Matrix) -> Var {
        Var::new_node(value, Vec::new(), None, true)
    }

    /// Current value (cloned).
    pub fn value(&self) -> Matrix {
        self.0.value.borrow().clone()
    }

    /// Shape of the value.
    pub fn shape(&self) -> (usize, usize) {
        self.0.value.borrow().shape()
    }

    /// Accumulated gradient (cloned). Zero for constants and before
    /// `backward`.
    pub fn grad(&self) -> Matrix {
        self.0.grad.borrow().clone()
    }

    /// Whether this node participates in gradient accumulation.
    pub fn requires_grad(&self) -> bool {
        self.0.requires_grad
    }

    /// Overwrites the value of a leaf node (used by optimisers).
    pub fn set_value(&self, value: Matrix) {
        assert_eq!(
            value.shape(),
            self.0.value.borrow().shape(),
            "set_value must preserve shape"
        );
        *self.0.value.borrow_mut() = value;
    }

    /// Resets the accumulated gradient to zero.
    pub fn zero_grad(&self) {
        let (r, c) = self.shape();
        *self.0.grad.borrow_mut() = Matrix::zeros(r, c);
    }

    fn accumulate_grad(&self, g: &Matrix) {
        let mut cur = self.0.grad.borrow_mut();
        *cur = &*cur + g;
    }

    fn ptr_id(&self) -> usize {
        Rc::as_ptr(&self.0) as usize
    }

    /// Runs reverse-mode differentiation from this node, which must be a 1×1
    /// scalar (a loss). Gradients are *accumulated*: call
    /// [`Var::zero_grad`] (or an optimiser's `zero_grad`) on parameters
    /// between steps.
    pub fn backward(&self) {
        assert_eq!(self.shape(), (1, 1), "backward() must start from a scalar");
        // Topological order via iterative post-order DFS.
        let mut order: Vec<Var> = Vec::new();
        let mut visited: HashSet<usize> = HashSet::new();
        let mut stack: Vec<(Var, bool)> = vec![(self.clone(), false)];
        while let Some((node, processed)) = stack.pop() {
            if processed {
                order.push(node);
                continue;
            }
            if !visited.insert(node.ptr_id()) {
                continue;
            }
            stack.push((node.clone(), true));
            for p in &node.0.parents {
                if !visited.contains(&p.ptr_id()) {
                    stack.push((p.clone(), false));
                }
            }
        }
        // Seed the output gradient with 1.
        self.accumulate_grad(&Matrix::filled(1, 1, 1.0));
        // Propagate in reverse topological order.
        for node in order.iter().rev() {
            if let Some(backward) = &node.0.backward {
                let grad_out = node.0.grad.borrow().clone();
                backward(&grad_out, &node.0.parents);
            }
        }
    }

    // ----------------------------------------------------------------------
    // Operations
    // ----------------------------------------------------------------------

    /// Matrix product `self · rhs`.
    pub fn matmul(&self, rhs: &Var) -> Var {
        let value = self.value().matmul(&rhs.value());
        let a = self.clone();
        let b = rhs.clone();
        Var::new_node(
            value,
            vec![a, b],
            Some(Box::new(move |grad_out, parents| {
                let a = &parents[0];
                let b = &parents[1];
                if a.requires_grad_reachable() {
                    a.accumulate_grad(&grad_out.matmul(&b.value().transpose()));
                }
                if b.requires_grad_reachable() {
                    b.accumulate_grad(&a.value().transpose().matmul(grad_out));
                }
            })),
            true,
        )
    }

    /// Element-wise sum.
    pub fn add(&self, rhs: &Var) -> Var {
        let value = &self.value() + &rhs.value();
        Var::new_node(
            value,
            vec![self.clone(), rhs.clone()],
            Some(Box::new(move |grad_out, parents| {
                parents[0].accumulate_grad(grad_out);
                parents[1].accumulate_grad(grad_out);
            })),
            true,
        )
    }

    /// Element-wise difference.
    pub fn sub(&self, rhs: &Var) -> Var {
        let value = &self.value() - &rhs.value();
        Var::new_node(
            value,
            vec![self.clone(), rhs.clone()],
            Some(Box::new(move |grad_out, parents| {
                parents[0].accumulate_grad(grad_out);
                parents[1].accumulate_grad(&grad_out.scale(-1.0));
            })),
            true,
        )
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, rhs: &Var) -> Var {
        let value = self.value().hadamard(&rhs.value());
        Var::new_node(
            value,
            vec![self.clone(), rhs.clone()],
            Some(Box::new(move |grad_out, parents| {
                let a = parents[0].value();
                let b = parents[1].value();
                parents[0].accumulate_grad(&grad_out.hadamard(&b));
                parents[1].accumulate_grad(&grad_out.hadamard(&a));
            })),
            true,
        )
    }

    /// Scales by a constant.
    pub fn scale(&self, s: f64) -> Var {
        let value = self.value().scale(s);
        Var::new_node(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad_out, parents| {
                parents[0].accumulate_grad(&grad_out.scale(s));
            })),
            true,
        )
    }

    /// Adds a constant matrix (not differentiated through).
    pub fn add_const(&self, c: &Matrix) -> Var {
        let value = &self.value() + c;
        Var::new_node(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad_out, parents| {
                parents[0].accumulate_grad(grad_out);
            })),
            true,
        )
    }

    /// Broadcast-adds a 1×cols bias row to every row.
    pub fn add_bias(&self, bias: &Var) -> Var {
        let value = self.value().add_row_broadcast(&bias.value());
        Var::new_node(
            value,
            vec![self.clone(), bias.clone()],
            Some(Box::new(move |grad_out, parents| {
                parents[0].accumulate_grad(grad_out);
                parents[1].accumulate_grad(&grad_out.sum_rows());
            })),
            true,
        )
    }

    /// Element-wise hyperbolic tangent.
    pub fn tanh(&self) -> Var {
        let value = self.value().map(f64::tanh);
        let cached = value.clone();
        Var::new_node(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad_out, parents| {
                let d = cached.map(|y| 1.0 - y * y);
                parents[0].accumulate_grad(&grad_out.hadamard(&d));
            })),
            true,
        )
    }

    /// Element-wise logistic sigmoid.
    pub fn sigmoid(&self) -> Var {
        let value = self.value().map(|v| 1.0 / (1.0 + (-v).exp()));
        let cached = value.clone();
        Var::new_node(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad_out, parents| {
                let d = cached.map(|y| y * (1.0 - y));
                parents[0].accumulate_grad(&grad_out.hadamard(&d));
            })),
            true,
        )
    }

    /// Element-wise rectified linear unit.
    pub fn relu(&self) -> Var {
        let input = self.value();
        let value = input.map(|v| v.max(0.0));
        Var::new_node(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad_out, parents| {
                let mask = input.map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                parents[0].accumulate_grad(&grad_out.hadamard(&mask));
            })),
            true,
        )
    }

    /// Row-wise softmax (each row normalised independently).
    pub fn softmax_rows(&self) -> Var {
        let value = self.value().softmax_rows();
        let cached = value.clone();
        Var::new_node(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad_out, parents| {
                // d softmax / d x applied row by row:
                // grad_in_j = s_j * (grad_out_j - Σ_k grad_out_k s_k)
                let (rows, cols) = cached.shape();
                let mut grad_in = Matrix::zeros(rows, cols);
                for r in 0..rows {
                    let s = cached.row(r);
                    let g = grad_out.row(r);
                    let dot: f64 = s.iter().zip(g.iter()).map(|(a, b)| a * b).sum();
                    for c in 0..cols {
                        grad_in.set(r, c, s[c] * (g[c] - dot));
                    }
                }
                parents[0].accumulate_grad(&grad_in);
            })),
            true,
        )
    }

    /// Transpose.
    pub fn transpose(&self) -> Var {
        let value = self.value().transpose();
        Var::new_node(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad_out, parents| {
                parents[0].accumulate_grad(&grad_out.transpose());
            })),
            true,
        )
    }

    /// Horizontal concatenation `[self | rhs]`.
    pub fn concat_cols(&self, rhs: &Var) -> Var {
        let left_cols = self.shape().1;
        let value = self.value().concat_cols(&rhs.value());
        Var::new_node(
            value,
            vec![self.clone(), rhs.clone()],
            Some(Box::new(move |grad_out, parents| {
                let (rows, total) = grad_out.shape();
                let right_cols = total - left_cols;
                let mut ga = Matrix::zeros(rows, left_cols);
                let mut gb = Matrix::zeros(rows, right_cols);
                for r in 0..rows {
                    ga.row_mut(r).copy_from_slice(&grad_out.row(r)[..left_cols]);
                    gb.row_mut(r).copy_from_slice(&grad_out.row(r)[left_cols..]);
                }
                parents[0].accumulate_grad(&ga);
                parents[1].accumulate_grad(&gb);
            })),
            true,
        )
    }

    /// Causal temporal unfolding with dilation (the data layout used by the
    /// dilated causal convolution of Eq. 3).
    ///
    /// Interpreting each row of `self` as one timestep, the output row `t`
    /// is the concatenation `[x_t, x_{t-d}, x_{t-2d}, …]` for `kernel` taps,
    /// with zero padding before the start of the sequence.
    pub fn unfold_causal(&self, kernel: usize, dilation: usize) -> Var {
        assert!(kernel >= 1 && dilation >= 1);
        let input = self.value();
        let (rows, cols) = input.shape();
        let mut value = Matrix::zeros(rows, cols * kernel);
        for t in 0..rows {
            for tap in 0..kernel {
                let offset = tap * dilation;
                if t >= offset {
                    let src = input.row(t - offset);
                    value.row_mut(t)[tap * cols..(tap + 1) * cols].copy_from_slice(src);
                }
            }
        }
        Var::new_node(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad_out, parents| {
                let mut grad_in = Matrix::zeros(rows, cols);
                for t in 0..rows {
                    for tap in 0..kernel {
                        let offset = tap * dilation;
                        if t >= offset {
                            let g = &grad_out.row(t)[tap * cols..(tap + 1) * cols];
                            let dst = grad_in.row_mut(t - offset);
                            for (d, &v) in dst.iter_mut().zip(g.iter()) {
                                *d += v;
                            }
                        }
                    }
                }
                parents[0].accumulate_grad(&grad_in);
            })),
            true,
        )
    }

    /// Extracts a contiguous block of rows as a new node.
    pub fn rows_slice(&self, start: usize, len: usize) -> Var {
        let input_shape = self.shape();
        let value = self.value().rows_slice(start, len);
        Var::new_node(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad_out, parents| {
                let mut grad_in = Matrix::zeros(input_shape.0, input_shape.1);
                for r in 0..grad_out.rows() {
                    grad_in.row_mut(start + r).copy_from_slice(grad_out.row(r));
                }
                parents[0].accumulate_grad(&grad_in);
            })),
            true,
        )
    }

    /// Mean squared error against a constant target, as a 1×1 node.
    pub fn mse_loss(&self, target: &Matrix) -> Var {
        assert_eq!(self.shape(), target.shape(), "mse target shape mismatch");
        let pred = self.value();
        let n = (pred.rows() * pred.cols()) as f64;
        let diff = &pred - target;
        let value = Matrix::filled(1, 1, diff.data().iter().map(|v| v * v).sum::<f64>() / n);
        let target = target.clone();
        Var::new_node(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad_out, parents| {
                let g = grad_out.get(0, 0);
                let pred = parents[0].value();
                let grad_in = (&pred - &target).scale(2.0 * g / n);
                parents[0].accumulate_grad(&grad_in);
            })),
            true,
        )
    }

    /// Binary cross-entropy against a constant 0/1 target, as a 1×1 node.
    ///
    /// `self` must hold probabilities in `(0, 1)` (e.g. the output of
    /// [`Var::sigmoid`]); values are clamped to `[1e-7, 1 - 1e-7]` for
    /// numerical stability, exactly like common DL framework implementations.
    pub fn bce_loss(&self, target: &Matrix) -> Var {
        assert_eq!(self.shape(), target.shape(), "bce target shape mismatch");
        const EPS: f64 = 1e-7;
        let pred = self.value().map(|p| p.clamp(EPS, 1.0 - EPS));
        let n = (pred.rows() * pred.cols()) as f64;
        let total: f64 = pred
            .data()
            .iter()
            .zip(target.data().iter())
            .map(|(&p, &t)| -(t * p.ln() + (1.0 - t) * (1.0 - p).ln()))
            .sum();
        let value = Matrix::filled(1, 1, total / n);
        let target = target.clone();
        Var::new_node(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad_out, parents| {
                let g = grad_out.get(0, 0);
                let pred = parents[0].value().map(|p| p.clamp(EPS, 1.0 - EPS));
                let grad_in = pred.zip(&target, |p, t| g * (p - t) / (p * (1.0 - p)) / n);
                parents[0].accumulate_grad(&grad_in);
            })),
            true,
        )
    }

    /// Sum of all elements as a 1×1 node.
    pub fn sum(&self) -> Var {
        let (rows, cols) = self.shape();
        let value = Matrix::filled(1, 1, self.value().sum());
        Var::new_node(
            value,
            vec![self.clone()],
            Some(Box::new(move |grad_out, parents| {
                let g = grad_out.get(0, 0);
                parents[0].accumulate_grad(&Matrix::filled(rows, cols, g));
            })),
            true,
        )
    }

    /// Mean of all elements as a 1×1 node.
    pub fn mean(&self) -> Var {
        let (rows, cols) = self.shape();
        let n = (rows * cols) as f64;
        self.sum().scale(1.0 / n)
    }

    fn requires_grad_reachable(&self) -> bool {
        // A node participates in differentiation if it is itself a parameter
        // or an interior node (interior nodes always require grad so the chain
        // reaches parameters below them).
        self.0.requires_grad || !self.0.parents.is_empty()
    }
}

impl std::fmt::Debug for Var {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (r, c) = self.shape();
        write!(
            f,
            "Var({}x{}, requires_grad={})",
            r, c, self.0.requires_grad
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check for a scalar function of one parameter
    /// matrix.
    fn check_gradient(param: Matrix, f: impl Fn(&Var) -> Var, tolerance: f64) {
        let p = Var::parameter(param.clone());
        let loss = f(&p);
        loss.backward();
        let analytic = p.grad();
        let eps = 1e-5;
        for r in 0..param.rows() {
            for c in 0..param.cols() {
                let mut plus = param.clone();
                plus.set(r, c, param.get(r, c) + eps);
                let mut minus = param.clone();
                minus.set(r, c, param.get(r, c) - eps);
                let lp = f(&Var::parameter(plus)).value().get(0, 0);
                let lm = f(&Var::parameter(minus)).value().get(0, 0);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - analytic.get(r, c)).abs() < tolerance,
                    "grad mismatch at ({r},{c}): numeric={numeric} analytic={}",
                    analytic.get(r, c)
                );
            }
        }
    }

    #[test]
    fn matmul_gradients_match_finite_differences() {
        let x = Matrix::from_rows(&[&[1.0, -2.0], &[0.5, 3.0]]);
        check_gradient(
            Matrix::from_rows(&[&[0.3, 0.7], &[-0.2, 0.1]]),
            |w| Var::constant(x.clone()).matmul(w).tanh().sum(),
            1e-6,
        );
    }

    #[test]
    fn sigmoid_relu_chain_gradients() {
        check_gradient(
            Matrix::from_rows(&[&[0.2, -0.4, 0.6]]),
            |w| w.sigmoid().relu().hadamard(&w.sigmoid().relu()).sum(),
            1e-6,
        );
    }

    #[test]
    fn softmax_gradients_match_finite_differences() {
        check_gradient(
            Matrix::from_rows(&[&[0.1, 0.5, -0.3], &[1.0, -1.0, 0.2]]),
            |w| {
                let target = Matrix::from_rows(&[&[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]);
                w.softmax_rows()
                    .hadamard(&Var::constant(target))
                    .sum()
                    .scale(-1.0)
            },
            1e-6,
        );
    }

    #[test]
    fn bias_broadcast_gradients() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        check_gradient(
            Matrix::row_vector(&[0.1, -0.2]),
            |b| Var::constant(x.clone()).add_bias(b).tanh().sum(),
            1e-6,
        );
    }

    #[test]
    fn unfold_causal_gradients() {
        check_gradient(
            Matrix::from_rows(&[&[1.0, 0.5], &[-0.5, 0.2], &[0.3, 0.9], &[0.0, -1.0]]),
            |x| x.unfold_causal(2, 2).tanh().sum(),
            1e-6,
        );
    }

    #[test]
    fn unfold_causal_layout_is_lagged_concat() {
        let x = Var::constant(Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]));
        let u = x.unfold_causal(2, 1).value();
        assert_eq!(u.shape(), (3, 2));
        assert_eq!(u.row(0), &[1.0, 0.0]); // no history at t=0 -> zero pad
        assert_eq!(u.row(1), &[2.0, 1.0]);
        assert_eq!(u.row(2), &[3.0, 2.0]);
    }

    #[test]
    fn shared_subexpression_accumulates_gradient_once_per_use() {
        // loss = sum(w + w) => dloss/dw = 2 for each element.
        let w = Var::parameter(Matrix::from_rows(&[&[1.0, 2.0]]));
        let loss = w.add(&w).sum();
        loss.backward();
        assert_eq!(w.grad(), Matrix::from_rows(&[&[2.0, 2.0]]));
    }

    #[test]
    fn transpose_and_concat_gradients() {
        check_gradient(
            Matrix::from_rows(&[&[0.5, -0.5], &[0.25, 0.75]]),
            |w| w.transpose().concat_cols(w).tanh().sum(),
            1e-6,
        );
    }

    #[test]
    fn rows_slice_gradients() {
        check_gradient(
            Matrix::from_rows(&[&[0.5, -0.5], &[0.25, 0.75], &[1.0, -1.0]]),
            |w| w.rows_slice(1, 2).sigmoid().sum(),
            1e-6,
        );
    }

    #[test]
    fn mean_is_sum_over_n() {
        let w = Var::parameter(Matrix::from_rows(&[&[2.0, 4.0]]));
        let m = w.mean();
        assert!((m.value().get(0, 0) - 3.0).abs() < 1e-12);
        m.backward();
        assert_eq!(w.grad(), Matrix::from_rows(&[&[0.5, 0.5]]));
    }

    #[test]
    #[should_panic(expected = "scalar")]
    fn backward_requires_scalar() {
        let w = Var::parameter(Matrix::zeros(2, 2));
        w.backward();
    }
}
