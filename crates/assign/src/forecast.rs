//! The pluggable demand-forecast API consumed by the planning layer.
//!
//! Historically the adaptive runner received its demand predictions as one
//! immutable `&[PredictedTaskInput]` slice fixed at `start`/`run` time — a
//! whole-trace oracle that a live session could never update. The
//! [`ForecastProvider`] trait replaces that seam: the streaming drivers feed
//! every task arrival into the provider through
//! [`ForecastProvider::observe`], and the runner re-queries
//! [`ForecastProvider::forecast`] at every planning instant, so a provider
//! may refresh its view of near-future demand as the distribution shifts
//! mid-stream.
//!
//! Two families of implementations exist:
//!
//! * [`StaticForecast`] (this crate) wraps a precomputed prediction slice and
//!   returns it unchanged at every query — the bitwise-parity bridge to the
//!   pre-redesign engine. Every replay/equivalence pin in the workspace runs
//!   through it.
//! * `OnlineForecaster` (in `datawa-predict`, which owns the models)
//!   maintains a rolling per-cell occurrence window from the observed
//!   arrivals and re-runs a trained demand predictor on a configurable
//!   refresh cadence.
//!
//! ## Record ownership
//!
//! The planning layer owns [`PredictedTaskInput`] (location + lifetime — the
//! minimum the planner consumes); the prediction layer owns
//! `datawa_predict::PredictedTask` (which additionally carries the grid cell
//! and the model confidence). `datawa-predict` provides the single
//! conversion path between them (`impl From<PredictedTask> for
//! PredictedTaskInput`); nothing else should copy the fields by hand.

use crate::adaptive::PredictedTaskInput;
use datawa_core::{Duration, Task, Timestamp};

/// Counters describing a provider's activity so far. All fields accumulate
/// monotonically except [`ForecastStats::forecast_tasks`], which reflects the
/// latest forecast.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ForecastStats {
    /// Task arrivals fed through [`ForecastProvider::observe`].
    pub observed: usize,
    /// [`ForecastProvider::forecast`] queries answered (one per planning
    /// instant of a prediction-aware policy).
    pub queries: usize,
    /// Model re-forecasts actually performed (always 0 for
    /// [`StaticForecast`]; bounded by the refresh cadence for online
    /// providers).
    pub refreshes: usize,
    /// Predicted tasks in the latest forecast.
    pub forecast_tasks: usize,
}

impl ForecastStats {
    /// Accumulates another provider's counters (used by the sharded engine
    /// to merge shard-local providers; callers fold in ascending shard index
    /// so the merge is deterministic). `forecast_tasks` adds up because the
    /// shard forecasts partition the study area.
    #[must_use]
    pub fn merged(self, other: ForecastStats) -> ForecastStats {
        ForecastStats {
            observed: self.observed + other.observed,
            queries: self.queries + other.queries,
            refreshes: self.refreshes + other.refreshes,
            forecast_tasks: self.forecast_tasks + other.forecast_tasks,
        }
    }
}

/// A refreshable source of near-future demand predictions.
///
/// Drivers push every task arrival into the provider via `observe`; the
/// runner pulls a fresh prediction slice via `forecast` at every planning
/// instant of a prediction-aware policy ([`PolicyKind::uses_prediction`]).
/// The runner applies its own lookahead filtering on top of the returned
/// slice (only predictions publishing inside `(now, now + lookahead]` and
/// not yet expired take part in planning), so providers may return their
/// whole current forecast without trimming it to the horizon.
///
/// [`PolicyKind::uses_prediction`]: crate::PolicyKind::uses_prediction
pub trait ForecastProvider {
    /// Human-readable provider name (used in service/experiment reports).
    fn name(&self) -> &str;

    /// Feeds one observed task arrival at time `now` (its publication
    /// instant). Called by the streaming drivers for *every* arrival, under
    /// every policy, so a provider's occurrence history stays complete even
    /// while a non-predictive policy runs.
    fn observe(&mut self, now: Timestamp, task: &Task);

    /// Returns the current forecast of near-future demand as of `now`.
    /// `horizon` is the runner's prediction lookahead — a hint that lets
    /// providers bound how far ahead they materialise predictions; the
    /// runner filters the returned slice to the horizon either way.
    fn forecast(&mut self, now: Timestamp, horizon: Duration) -> &[PredictedTaskInput];

    /// Activity counters so far.
    fn stats(&self) -> ForecastStats;
}

/// The whole-trace oracle bridge: wraps a precomputed prediction slice and
/// returns it unchanged at every query.
///
/// This is bitwise-identical to the pre-redesign engine, which baked the
/// same slice into the runner at start time and filtered it at every
/// planning instant — the filtering now happens on the `forecast` return
/// value instead, over the same elements in the same order.
#[derive(Debug, Clone, Default)]
pub struct StaticForecast {
    predicted: Vec<PredictedTaskInput>,
    observed: usize,
    queries: usize,
}

impl StaticForecast {
    /// Wraps an owned prediction list.
    #[must_use]
    pub fn new(predicted: Vec<PredictedTaskInput>) -> StaticForecast {
        StaticForecast {
            predicted,
            observed: 0,
            queries: 0,
        }
    }

    /// Copies a borrowed prediction slice (the signature every pre-redesign
    /// call site carried).
    #[must_use]
    pub fn from_slice(predicted: &[PredictedTaskInput]) -> StaticForecast {
        StaticForecast::new(predicted.to_vec())
    }

    /// The wrapped predictions.
    pub fn predicted(&self) -> &[PredictedTaskInput] {
        &self.predicted
    }
}

impl ForecastProvider for StaticForecast {
    fn name(&self) -> &str {
        "static"
    }

    fn observe(&mut self, _now: Timestamp, _task: &Task) {
        self.observed += 1;
    }

    fn forecast(&mut self, _now: Timestamp, _horizon: Duration) -> &[PredictedTaskInput] {
        self.queries += 1;
        &self.predicted
    }

    fn stats(&self) -> ForecastStats {
        ForecastStats {
            observed: self.observed,
            queries: self.queries,
            refreshes: 0,
            forecast_tasks: self.predicted.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datawa_core::{Location, TaskId};

    fn input(x: f64, p: f64) -> PredictedTaskInput {
        PredictedTaskInput {
            location: Location::new(x, 0.0),
            publication: Timestamp(p),
            expiration: Timestamp(p + 40.0),
        }
    }

    #[test]
    fn static_forecast_returns_the_wrapped_slice_verbatim() {
        let predicted = vec![input(1.0, 10.0), input(2.0, 20.0)];
        let mut f = StaticForecast::new(predicted.clone());
        let out = f.forecast(Timestamp(0.0), Duration(60.0));
        assert_eq!(out, &predicted[..]);
        // Re-querying at a later instant returns the same slice: the static
        // provider is exactly the old baked-in oracle.
        let out = f.forecast(Timestamp(500.0), Duration(60.0));
        assert_eq!(out, &predicted[..]);
        assert_eq!(f.stats().queries, 2);
        assert_eq!(f.stats().refreshes, 0);
        assert_eq!(f.stats().forecast_tasks, 2);
    }

    #[test]
    fn observations_are_counted_but_change_nothing() {
        let mut f = StaticForecast::from_slice(&[input(1.0, 10.0)]);
        let t = Task::new(
            TaskId(0),
            Location::new(0.0, 0.0),
            Timestamp(1.0),
            Timestamp(2.0),
        );
        f.observe(t.publication, &t);
        f.observe(t.publication, &t);
        assert_eq!(f.stats().observed, 2);
        assert_eq!(f.forecast(Timestamp(0.0), Duration(1.0)).len(), 1);
    }

    #[test]
    fn stats_merge_adds_counters() {
        let a = ForecastStats {
            observed: 3,
            queries: 2,
            refreshes: 1,
            forecast_tasks: 4,
        };
        let b = ForecastStats {
            observed: 1,
            queries: 1,
            refreshes: 0,
            forecast_tasks: 2,
        };
        let m = a.merged(b);
        assert_eq!(m.observed, 4);
        assert_eq!(m.queries, 3);
        assert_eq!(m.refreshes, 1);
        assert_eq!(m.forecast_tasks, 6);
    }
}
