//! Error types shared by the workspace.

use crate::task::TaskId;
use crate::worker::WorkerId;
use std::fmt;

/// Errors produced by core-layer validation and lookups.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A task id was not found in the store.
    UnknownTask(TaskId),
    /// A worker id was not found in the store.
    UnknownWorker(WorkerId),
    /// A record failed well-formedness validation (NaN coordinates, inverted
    /// windows, …). The string carries the human-readable reason.
    Malformed(String),
    /// A configuration value is outside its legal range.
    InvalidConfig(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownTask(t) => write!(f, "unknown task {t}"),
            CoreError::UnknownWorker(w) => write!(f, "unknown worker {w}"),
            CoreError::Malformed(msg) => write!(f, "malformed record: {msg}"),
            CoreError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {}

/// Result alias for core-layer operations.
pub type CoreResult<T> = Result<T, CoreError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_readably() {
        assert_eq!(
            format!("{}", CoreError::UnknownTask(TaskId(3))),
            "unknown task s3"
        );
        assert_eq!(
            format!("{}", CoreError::UnknownWorker(WorkerId(2))),
            "unknown worker w2"
        );
        assert!(format!("{}", CoreError::Malformed("x".into())).contains("malformed"));
        assert!(format!("{}", CoreError::InvalidConfig("y".into())).contains("configuration"));
    }
}
