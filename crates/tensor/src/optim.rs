//! Gradient-descent optimisers.

use crate::autograd::Var;
use crate::matrix::Matrix;

/// Plain stochastic gradient descent with an optional gradient clip.
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
    /// If set, gradients are clipped element-wise to `[-clip, clip]` before
    /// the update (a cheap guard against exploding recurrent gradients).
    pub clip: Option<f64>,
    params: Vec<Var>,
}

impl Sgd {
    /// Creates an SGD optimiser over the given parameters.
    pub fn new(lr: f64, params: Vec<Var>) -> Sgd {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd {
            lr,
            clip: None,
            params,
        }
    }

    /// Enables element-wise gradient clipping.
    pub fn with_clip(mut self, clip: f64) -> Sgd {
        self.clip = Some(clip);
        self
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Applies one descent step using the currently accumulated gradients.
    pub fn step(&mut self) {
        for p in &self.params {
            let mut g = p.grad();
            if let Some(c) = self.clip {
                g = g.map(|v| v.clamp(-c, c));
            }
            let new = &p.value() - &g.scale(self.lr);
            p.set_value(new);
        }
    }

    /// The managed parameters.
    pub fn parameters(&self) -> &[Var] {
        &self.params
    }
}

/// Adam optimiser (Kingma & Ba) with bias correction.
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// Exponential decay for the first moment.
    pub beta1: f64,
    /// Exponential decay for the second moment.
    pub beta2: f64,
    /// Numerical stabiliser.
    pub eps: f64,
    params: Vec<Var>,
    m: Vec<Matrix>,
    v: Vec<Matrix>,
    t: u64,
}

impl Adam {
    /// Creates an Adam optimiser with the standard betas (0.9, 0.999).
    pub fn new(lr: f64, params: Vec<Var>) -> Adam {
        assert!(lr > 0.0, "learning rate must be positive");
        let m = params
            .iter()
            .map(|p| {
                let (r, c) = p.shape();
                Matrix::zeros(r, c)
            })
            .collect();
        let v = params
            .iter()
            .map(|p| {
                let (r, c) = p.shape();
                Matrix::zeros(r, c)
            })
            .collect();
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            params,
            m,
            v,
            t: 0,
        }
    }

    /// Zeroes all parameter gradients.
    pub fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    /// Applies one Adam step using the currently accumulated gradients.
    pub fn step(&mut self) {
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for (idx, p) in self.params.iter().enumerate() {
            let g = p.grad();
            self.m[idx] = &self.m[idx].scale(self.beta1) + &g.scale(1.0 - self.beta1);
            self.v[idx] = &self.v[idx].scale(self.beta2) + &g.hadamard(&g).scale(1.0 - self.beta2);
            let m_hat = self.m[idx].scale(1.0 / b1t);
            let v_hat = self.v[idx].scale(1.0 / b2t);
            let update = m_hat.zip(&v_hat, |m, v| m / (v.sqrt() + self.eps));
            let new = &p.value() - &update.scale(self.lr);
            p.set_value(new);
        }
    }

    /// The managed parameters.
    pub fn parameters(&self) -> &[Var] {
        &self.params
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise (x - 3)^2 with each optimiser and check convergence.
    fn quadratic_loss(x: &Var) -> Var {
        let d = x.add_const(&Matrix::filled(1, 1, -3.0));
        d.hadamard(&d).sum()
    }

    #[test]
    fn sgd_converges_on_a_quadratic() {
        let x = Var::parameter(Matrix::filled(1, 1, 10.0));
        let mut opt = Sgd::new(0.1, vec![x.clone()]);
        for _ in 0..100 {
            opt.zero_grad();
            quadratic_loss(&x).backward();
            opt.step();
        }
        assert!((x.value().get(0, 0) - 3.0).abs() < 1e-4);
    }

    #[test]
    fn sgd_clipping_limits_the_step() {
        let x = Var::parameter(Matrix::filled(1, 1, 1000.0));
        let mut opt = Sgd::new(1.0, vec![x.clone()]).with_clip(1.0);
        opt.zero_grad();
        quadratic_loss(&x).backward();
        opt.step();
        // Unclipped gradient would be ~1994; clipped step is exactly 1.
        assert!((x.value().get(0, 0) - 999.0).abs() < 1e-9);
    }

    #[test]
    fn adam_converges_on_a_quadratic() {
        let x = Var::parameter(Matrix::filled(1, 1, -5.0));
        let mut opt = Adam::new(0.3, vec![x.clone()]);
        for _ in 0..300 {
            opt.zero_grad();
            quadratic_loss(&x).backward();
            opt.step();
        }
        assert!((x.value().get(0, 0) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn optimisers_manage_their_parameter_lists() {
        let x = Var::parameter(Matrix::zeros(2, 2));
        let sgd = Sgd::new(0.1, vec![x.clone()]);
        assert_eq!(sgd.parameters().len(), 1);
        let adam = Adam::new(0.1, vec![x]);
        assert_eq!(adam.parameters().len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_learning_rate_is_rejected() {
        let _ = Sgd::new(0.0, vec![]);
    }
}
