//! Tenant isolation: a misbehaving client — oversized frames, junk bytes,
//! mid-frame disconnects, watermark violations, malformed entities — is
//! answered with a typed error (or silently dropped on disconnect) and
//! loses *its own* connection only. A well-behaved tenant running
//! concurrently must finish with a bit-identical decision stream, and the
//! server must keep accepting new connections afterwards.

use datawa_assign::{AdaptiveRunner, AssignConfig, PolicyKind, StaticForecast};
use datawa_core::{Location, Task, TaskId, Timestamp, Worker, WorkerId};
use datawa_net::{
    wire::{read_frame, write_frame},
    ErrorCode, Frame, NetClient, NetConfig, NetServer, PROTOCOL_VERSION,
};
use datawa_service::{IngestSource, SourcePoll, WorkloadSource};
use datawa_stream::{
    CollectingSink, Decision, EngineConfig, Event, ScenarioGenerator, ScenarioSpec, Session,
    UniformBaseline, Workload,
};
use std::io::Write;
use std::net::TcpStream;

fn workload() -> Workload {
    UniformBaseline::new(
        ScenarioSpec::small()
            .with_tasks(80)
            .with_workers(8)
            .with_seed(9),
    )
    .generate()
}

fn direct_decisions(workload: &Workload) -> Vec<Decision> {
    let runner = AdaptiveRunner::new(AssignConfig::default(), PolicyKind::Greedy);
    let mut forecast = StaticForecast::default();
    let mut session = Session::open(&runner, &mut forecast, EngineConfig::default());
    let mut source = WorkloadSource::new(workload);
    while let SourcePoll::Ready(time, event) = source.poll() {
        session.ingest(time, event).expect("replay order is valid");
    }
    let mut sink = CollectingSink::new();
    let _ = session.close(&mut sink);
    sink.into_decisions()
}

/// Runs a well-behaved tenant to completion and asserts its stream is
/// untouched; meanwhile `misbehave` does its worst on its own connection.
fn assert_good_tenant_survives(server: &NetServer, misbehave: impl FnOnce(std::net::SocketAddr)) {
    let workload = workload();
    let expected = direct_decisions(&workload);
    let addr = server.addr();

    let good = std::thread::spawn(move || {
        let mut client = NetClient::connect(addr, "good", "").expect("handshake");
        let mut source = WorkloadSource::new(&workload);
        while let SourcePoll::Ready(time, event) = source.poll() {
            client.send_event(time, &event).expect("send event frame");
        }
        client.close()
    });

    misbehave(addr);

    let outcome = good.join().expect("good tenant thread");
    assert!(outcome.errors.is_empty(), "{:?}", outcome.errors);
    assert_eq!(
        outcome.decisions, expected,
        "a misbehaving neighbour corrupted a well-behaved tenant's stream"
    );

    // The server is still healthy: a fresh connection round-trips.
    let follow_up = NetClient::connect(addr, "follow-up", "").expect("post-abuse handshake");
    let closed = follow_up.close().closed.expect("clean close");
    assert_eq!(closed.assigned, 0, "empty session closes cleanly");
}

/// A raw socket that completed the handshake and can write arbitrary bytes.
fn raw_handshake(addr: std::net::SocketAddr, tenant: &str) -> TcpStream {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write_frame(
        &mut stream,
        &Frame::Hello {
            version: PROTOCOL_VERSION,
            tenant: tenant.to_string(),
            token: String::new(),
        },
    )
    .expect("send hello");
    match read_frame(&mut stream) {
        Ok(Frame::HelloAck { .. }) => stream,
        other => panic!("handshake failed: {other:?}"),
    }
}

/// Reads server frames until the connection drops, returning the first
/// error frame if any.
fn first_error(stream: &mut TcpStream) -> Option<(ErrorCode, String)> {
    loop {
        match read_frame(stream) {
            Ok(Frame::Error { code, message }) => return Some((code, message)),
            Ok(_) => continue,
            Err(_) => return None,
        }
    }
}

#[test]
fn oversized_frame_is_refused_with_a_typed_error() {
    let server = NetServer::bind(NetConfig::default()).expect("bind loopback");
    assert_good_tenant_survives(&server, |addr| {
        let mut stream = raw_handshake(addr, "oversize");
        // A length prefix far past MAX_FRAME_LEN; the payload never follows.
        stream
            .write_all(&(u32::MAX / 2).to_le_bytes())
            .expect("write rogue length prefix");
        let (code, message) = first_error(&mut stream).expect("typed error before close");
        assert_eq!(code, ErrorCode::Protocol);
        assert!(message.contains("length"), "{message}");
    });
}

#[test]
fn junk_payload_is_refused_with_a_typed_error() {
    let server = NetServer::bind(NetConfig::default()).expect("bind loopback");
    assert_good_tenant_survives(&server, |addr| {
        let mut stream = raw_handshake(addr, "junk");
        // A valid length prefix followed by garbage bytes.
        let junk = [0x55u8, 0xde, 0xad, 0xbe, 0xef];
        stream
            .write_all(&(junk.len() as u32).to_le_bytes())
            .and_then(|()| stream.write_all(&junk))
            .expect("write junk frame");
        let (code, _) = first_error(&mut stream).expect("typed error before close");
        assert_eq!(code, ErrorCode::Protocol);
    });
}

#[test]
fn mid_frame_disconnect_is_contained() {
    let server = NetServer::bind(NetConfig::default()).expect("bind loopback");
    assert_good_tenant_survives(&server, |addr| {
        let mut stream = raw_handshake(addr, "ghost");
        // Promise 64 bytes, deliver 5, vanish.
        stream
            .write_all(&64u32.to_le_bytes())
            .and_then(|()| stream.write_all(&[1, 2, 3, 4, 5]))
            .expect("write partial frame");
        drop(stream);
    });
}

#[test]
fn watermark_violations_and_malformed_entities_are_bad_events() {
    let server = NetServer::bind(NetConfig::default()).expect("bind loopback");

    // Time running backwards after an advance.
    let mut client = NetClient::connect(server.addr(), "rewind", "").expect("handshake");
    client.advance_to(Timestamp(100.0)).expect("advance");
    client
        .send_event(
            Timestamp(1.0),
            &Event::TaskArrival(Task::new(
                TaskId(0),
                Location::new(0.0, 0.0),
                Timestamp(1.0),
                Timestamp(2.0),
            )),
        )
        .expect("send stale event");
    let outcome = client.close();
    assert!(
        outcome
            .errors
            .iter()
            .any(|(code, _)| *code == ErrorCode::BadEvent),
        "{:?}",
        outcome.errors
    );

    // A worker whose window ends before it starts survives the codec (it is
    // structurally valid bytes) but is rejected at admission.
    let mut stream = raw_handshake(server.addr(), "invalid-worker");
    let mut bad_worker = Worker::new(
        WorkerId(1),
        Location::new(0.0, 0.0),
        1.0,
        Timestamp(0.0),
        Timestamp(10.0),
    );
    bad_worker.window.off = Timestamp(-5.0); // bypasses the constructor's check
    write_frame(
        &mut stream,
        &Frame::WorkerOnline {
            time: Timestamp(0.0),
            worker: bad_worker,
        },
    )
    .expect("send malformed worker");
    let (code, message) = first_error(&mut stream).expect("typed error before close");
    assert_eq!(code, ErrorCode::BadEvent);
    assert!(message.contains("worker"), "{message}");
}

#[test]
fn handshake_violations_are_typed() {
    let server = NetServer::bind(NetConfig {
        auth_token: Some("sesame".to_string()),
        ..NetConfig::default()
    })
    .expect("bind loopback");

    // Wrong token.
    match NetClient::connect(server.addr(), "acme", "wrong") {
        Err(datawa_net::ClientError::Refused { code, .. }) => {
            assert_eq!(code, ErrorCode::AuthFailed);
        }
        other => panic!("bad token accepted: {other:?}"),
    }

    // Wrong protocol version.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    write_frame(
        &mut stream,
        &Frame::Hello {
            version: PROTOCOL_VERSION + 1,
            tenant: "acme".to_string(),
            token: "sesame".to_string(),
        },
    )
    .expect("send hello");
    match read_frame(&mut stream) {
        Ok(Frame::Error { code, .. }) => assert_eq!(code, ErrorCode::VersionMismatch),
        other => panic!("version skew accepted: {other:?}"),
    }

    // First frame not a Hello at all.
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    write_frame(&mut stream, &Frame::Close).expect("send close first");
    match read_frame(&mut stream) {
        Ok(Frame::Error { code, .. }) => assert_eq!(code, ErrorCode::BadHello),
        other => panic!("hello-less stream accepted: {other:?}"),
    }

    // The right token still works.
    let client = NetClient::connect(server.addr(), "acme", "sesame").expect("handshake");
    drop(client.close());
}
