//! Source model: comment/string stripping, test-region tracking and
//! suppression directives.
//!
//! The scanner works on a *stripped* view of each file — string-literal
//! contents and comments replaced by spaces, line structure preserved — so
//! rule patterns never fire inside strings or prose. Line comments are
//! captured separately because they carry the suppression directives:
//!
//! ```text
//! // datawa-lint: allow(rule-a, rule-b) -- why this site is sound
//! // datawa-lint: allow-file(rule-a) -- why the whole file is sound
//! ```
//!
//! A directive on its own line applies to the next line; a trailing
//! directive applies to its own line. `allow-file` applies to the whole
//! file. A directive without `-- reason` still suppresses, but raises a
//! `missing-suppression-reason` finding so it cannot land silently.

/// Where a file sits in the test/production split. Only `Src` lines are
/// subject to the determinism rules; tests, benches and examples may use
/// clocks, unwraps and hash iteration freely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// Production code under `src/` (including `src/bin/`).
    Src,
    /// Integration tests (`tests/` directories).
    Test,
    /// Benchmarks (`benches/` directories).
    Bench,
    /// Examples (`examples/` directories).
    Example,
}

impl FileKind {
    /// Whether every line of the file counts as test code.
    pub fn is_test_like(self) -> bool {
        !matches!(self, FileKind::Src)
    }
}

/// One physical line of a scanned file.
#[derive(Debug, Clone)]
pub struct Line {
    /// Code with string contents and comments blanked out.
    pub code: String,
    /// Text of any `//` comment on the line (directive scanning).
    pub comment: Option<String>,
    /// Whether the line sits inside `#[cfg(test)]`/`#[test]` scope (or the
    /// whole file is test-like).
    pub is_test: bool,
}

/// A parsed `datawa-lint: allow(...)` directive.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rules the directive names (as written; validated by the engine).
    pub rules: Vec<String>,
    /// 1-based line the suppression applies to (ignored for `file_level`).
    pub target_line: usize,
    /// 1-based line the directive itself sits on.
    pub declared_line: usize,
    /// Whether a non-empty `-- reason` was given.
    pub has_reason: bool,
    /// `allow-file(...)` — applies to the whole file.
    pub file_level: bool,
    /// Whether the directive text parsed at all (`allow(` / `allow-file(`
    /// with a closing paren). Unparsable directives suppress nothing.
    pub well_formed: bool,
}

/// A scanned source file ready for rule evaluation.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path (forward slashes).
    pub rel_path: String,
    /// `crates/<name>/…` component, e.g. `Some("assign")`; `None` for the
    /// root facade (`src/`, `tests/`, `examples/`).
    pub crate_name: Option<String>,
    /// Test/production classification from the path.
    pub kind: FileKind,
    /// Physical lines, 0-indexed (line numbers in findings are 1-based).
    pub lines: Vec<Line>,
    /// Every `datawa-lint:` directive found in line comments.
    pub suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Parses `text` into the stripped line model.
    pub fn parse(rel_path: &str, crate_name: Option<&str>, kind: FileKind, text: &str) -> Self {
        let (stripped, comments) = strip(text);
        let mut lines: Vec<Line> = stripped
            .split('\n')
            .map(|code| Line {
                code: code.to_string(),
                comment: None,
                is_test: kind.is_test_like(),
            })
            .collect();
        for (idx, comment) in comments {
            if let Some(line) = lines.get_mut(idx) {
                line.comment = Some(comment);
            }
        }
        if !kind.is_test_like() {
            mark_test_regions(&mut lines);
        }
        let suppressions = parse_suppressions(&lines);
        SourceFile {
            rel_path: rel_path.to_string(),
            crate_name: crate_name.map(str::to_string),
            kind,
            lines,
            suppressions,
        }
    }

    /// Stripped code of lines `start..start+len` (0-based), joined with
    /// spaces — the "statement window" rules use to look for immediate
    /// sinks like `.collect::<BTreeMap<_, _>>()` or a following `sort`.
    pub fn window(&self, start: usize, len: usize) -> String {
        let end = (start + len).min(self.lines.len());
        let mut out = String::new();
        for line in &self.lines[start..end] {
            out.push_str(&line.code);
            out.push(' ');
        }
        out
    }
}

/// Replaces comment and string-literal contents with spaces, preserving the
/// line structure, and returns the stripped text plus every line comment's
/// text keyed by 0-based line index.
pub fn strip(text: &str) -> (String, Vec<(usize, String)>) {
    let bytes = text.as_bytes();
    let mut out = String::with_capacity(text.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut line = 0usize;
    let mut i = 0usize;

    // Pushes a blank for a skipped byte, preserving newlines.
    fn blank(out: &mut String, b: u8, line: &mut usize) {
        if b == b'\n' {
            out.push('\n');
            *line += 1;
        } else {
            out.push(' ');
        }
    }

    while i < bytes.len() {
        let b = bytes[i];
        // Line comment: capture its text for directive scanning.
        if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
            let start = i;
            while i < bytes.len() && bytes[i] != b'\n' {
                out.push(' ');
                i += 1;
            }
            comments.push((line, text[start..i].to_string()));
            continue;
        }
        // Block comment (nestable).
        if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
            let mut depth = 0usize;
            while i < bytes.len() {
                if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    blank(&mut out, bytes[i], &mut line);
                    blank(&mut out, bytes[i + 1], &mut line);
                    i += 2;
                } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    blank(&mut out, bytes[i], &mut line);
                    blank(&mut out, bytes[i + 1], &mut line);
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    blank(&mut out, bytes[i], &mut line);
                    i += 1;
                }
            }
            continue;
        }
        // Raw (and raw-byte) string literal: r"..", r#".."#, br".." …
        if (b == b'r' || b == b'b') && !prev_is_ident(bytes, i) {
            let mut j = i;
            if bytes[j] == b'b' && bytes.get(j + 1) == Some(&b'r') {
                j += 1;
            }
            if bytes[j] == b'r' {
                let mut hashes = 0usize;
                let mut k = j + 1;
                while bytes.get(k) == Some(&b'#') {
                    hashes += 1;
                    k += 1;
                }
                if bytes.get(k) == Some(&b'"') {
                    // Emit the opening delimiter as-is, blank the contents.
                    for &ob in &bytes[i..=k] {
                        out.push(ob as char);
                    }
                    i = k + 1;
                    while i < bytes.len() {
                        if bytes[i] == b'"'
                            && bytes[i + 1..]
                                .iter()
                                .take(hashes)
                                .filter(|&&c| c == b'#')
                                .count()
                                == hashes
                        {
                            out.push('"');
                            for _ in 0..hashes {
                                out.push('#');
                            }
                            i += 1 + hashes;
                            break;
                        }
                        blank(&mut out, bytes[i], &mut line);
                        i += 1;
                    }
                    continue;
                }
            }
        }
        // Ordinary (or byte) string literal.
        if b == b'"' {
            out.push('"');
            i += 1;
            while i < bytes.len() {
                match bytes[i] {
                    b'\\' => {
                        blank(&mut out, bytes[i], &mut line);
                        if i + 1 < bytes.len() {
                            blank(&mut out, bytes[i + 1], &mut line);
                        }
                        i += 2;
                    }
                    b'"' => {
                        out.push('"');
                        i += 1;
                        break;
                    }
                    other => {
                        blank(&mut out, other, &mut line);
                        i += 1;
                    }
                }
            }
            continue;
        }
        // Char literal vs lifetime: 'x' / '\n' are literals, 'a in `&'a T`
        // is not. A literal always closes within a few bytes.
        if b == b'\'' {
            if bytes.get(i + 1) == Some(&b'\\') {
                out.push('\'');
                i += 2; // consume the backslash
                out.push(' ');
                while i < bytes.len() && bytes[i] != b'\'' {
                    blank(&mut out, bytes[i], &mut line);
                    i += 1;
                }
                if i < bytes.len() {
                    out.push('\'');
                    i += 1;
                }
                continue;
            }
            if bytes.get(i + 2) == Some(&b'\'') && bytes.get(i + 1) != Some(&b'\'') {
                out.push('\'');
                out.push(' ');
                out.push('\'');
                i += 3;
                continue;
            }
            // Lifetime: emit the quote and move on.
            out.push('\'');
            i += 1;
            continue;
        }
        if b == b'\n' {
            out.push('\n');
            line += 1;
        } else {
            out.push(b as char);
        }
        i += 1;
    }
    (out, comments)
}

fn prev_is_ident(bytes: &[u8], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_')
}

/// Marks lines inside `#[cfg(test)]` / `#[test]` item bodies as test code
/// via a brace-depth scan over the stripped lines.
fn mark_test_regions(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut pending_attr = false;
    // Depths at which a test region was entered; a line is test code while
    // this stack is non-empty.
    let mut entries: Vec<i64> = Vec::new();

    for line in lines.iter_mut() {
        let code = line.code.clone();
        let trimmed = code.trim();
        if trimmed.contains("#[cfg(test)]") || trimmed.contains("#[test]") {
            pending_attr = true;
            line.is_test = true;
        }
        if !entries.is_empty() || pending_attr {
            line.is_test = true;
        }
        for c in code.chars() {
            match c {
                '{' => {
                    if pending_attr {
                        entries.push(depth);
                        pending_attr = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if entries.last() == Some(&depth) {
                        entries.pop();
                    }
                }
                _ => {}
            }
        }
        // `#[cfg(test)] use foo;` — the attribute bound to a braceless item.
        if pending_attr && trimmed.ends_with(';') && !trimmed.contains('{') {
            pending_attr = false;
        }
    }
}

/// Extracts every `datawa-lint:` directive from the captured line comments.
fn parse_suppressions(lines: &[Line]) -> Vec<Suppression> {
    let mut out = Vec::new();
    for (idx, line) in lines.iter().enumerate() {
        let Some(comment) = &line.comment else {
            continue;
        };
        // Directives live in plain `//` comments; doc comments (`///`,
        // `//!`) only *talk about* them.
        if comment.starts_with("///") || comment.starts_with("//!") {
            continue;
        }
        let Some(pos) = comment.find("datawa-lint:") else {
            continue;
        };
        let directive = comment[pos + "datawa-lint:".len()..].trim();
        let (body, reason) = match directive.split_once("--") {
            Some((b, r)) => (b.trim(), Some(r.trim())),
            None => (directive, None),
        };
        let (file_level, rest) = if let Some(r) = body.strip_prefix("allow-file") {
            (true, r.trim())
        } else if let Some(r) = body.strip_prefix("allow") {
            (false, r.trim())
        } else {
            (false, "")
        };
        let rules: Vec<String> = rest
            .strip_prefix('(')
            .and_then(|r| r.strip_suffix(')'))
            .map(|inner| {
                inner
                    .split(',')
                    .map(|r| r.trim().to_string())
                    .filter(|r| !r.is_empty())
                    .collect()
            })
            .unwrap_or_default();
        let well_formed = !rules.is_empty();
        // A directive on a comment-only line targets the next line, skipping
        // attribute-only lines (`#[allow(..)]` riders sit between the
        // rationale and the code it covers); a trailing directive targets its
        // own line.
        let target_line = if line.code.trim().is_empty() {
            let mut t = idx + 1;
            while let Some(next) = lines.get(t) {
                let code = next.code.trim();
                if code.starts_with("#[") && code.ends_with(']') {
                    t += 1;
                } else {
                    break;
                }
            }
            t + 1
        } else {
            idx + 1
        };
        out.push(Suppression {
            rules,
            target_line,
            declared_line: idx + 1,
            has_reason: reason.is_some_and(|r| !r.is_empty()),
            file_level,
            well_formed,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let (s, comments) = strip("let x = \"Instant::now\"; // Instant::now\nlet y = 1;");
        assert!(!s.contains("Instant"));
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].0, 0);
        assert!(comments[0].1.contains("Instant::now"));
        assert!(s.contains("let y = 1;"));
    }

    #[test]
    fn char_literals_do_not_eat_lifetimes() {
        let (s, _) = strip("fn f<'a>(x: &'a str) -> char { ',' }");
        assert!(s.contains("fn f<'a>(x: &'a str)"));
        assert!(!s.contains(','));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let (s, _) = strip("let x = r#\"env::var inside\"#; let ok = 1;");
        assert!(!s.contains("env::var"));
        assert!(s.contains("let ok = 1;"));
    }

    #[test]
    fn cfg_test_regions_are_marked() {
        let text = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn prod2() {}\n";
        let f = SourceFile::parse("a.rs", None, FileKind::Src, text);
        assert!(!f.lines[0].is_test);
        assert!(f.lines[2].is_test);
        assert!(f.lines[3].is_test);
        assert!(!f.lines[5].is_test, "region must close at the brace");
    }

    #[test]
    fn suppressions_parse_with_and_without_reasons() {
        let text = "// datawa-lint: allow(unwrap-in-hot-path) -- invariant: pool fills every slot\nx.unwrap();\ny.unwrap(); // datawa-lint: allow(unwrap-in-hot-path)\n";
        let f = SourceFile::parse("a.rs", None, FileKind::Src, text);
        assert_eq!(f.suppressions.len(), 2);
        assert_eq!(f.suppressions[0].target_line, 2);
        assert!(f.suppressions[0].has_reason);
        assert_eq!(f.suppressions[1].target_line, 3);
        assert!(!f.suppressions[1].has_reason);
    }

    #[test]
    fn comment_directives_skip_attribute_riders() {
        let text = "// datawa-lint: allow(wall-clock-in-hot-path) -- metric only\n#[allow(clippy::disallowed_methods)]\nlet start = Instant::now();\n";
        let f = SourceFile::parse("a.rs", None, FileKind::Src, text);
        assert_eq!(f.suppressions.len(), 1);
        assert_eq!(f.suppressions[0].target_line, 3);
    }

    #[test]
    fn file_level_suppressions_are_flagged_as_such() {
        let text = "// datawa-lint: allow-file(relaxed-atomic-audit) -- all counters monotonic\n";
        let f = SourceFile::parse("a.rs", None, FileKind::Src, text);
        assert!(f.suppressions[0].file_level);
        assert!(f.suppressions[0].well_formed);
    }
}
