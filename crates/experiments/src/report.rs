//! Plain-text table formatting for experiment output.

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each the same length as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; panics if the arity does not match the headers.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(row);
    }
}

/// Renders a table with aligned columns.
pub fn format_table(table: &Table) -> String {
    let mut widths: Vec<usize> = table.headers.iter().map(String::len).collect();
    for row in &table.rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths.iter())
            .map(|(c, w)| format!("{c:<w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(&table.headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in &table.rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rendering_aligns_columns() {
        let mut t = Table::new(vec!["method", "assigned"]);
        t.push_row(vec!["Greedy", "4500"]);
        t.push_row(vec!["DATA-WA", "7100"]);
        let s = format_table(&t);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("method"));
        assert!(lines[2].starts_with("Greedy"));
        // Both data rows have the same prefix width for the first column.
        assert_eq!(lines[2].find("4500"), lines[3].find("7100"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn mismatched_rows_are_rejected() {
        let mut t = Table::new(vec!["a", "b"]);
        t.push_row(vec!["only-one"]);
    }
}
