//! # datawa-service
//!
//! The live-ingest service front-end over the `datawa-stream` session API.
//!
//! Everything below the service boundary is an open-loop [`Session`]: events
//! in, typed [`Decision`]s out, time under caller control. This crate adds
//! the pieces a long-running dispatcher needs on top of that:
//!
//! * **[`IngestSource`]** — where arrivals come from. [`WorkloadSource`]
//!   replays a pre-built workload in the engine's deterministic order;
//!   [`LiveSource`] paces the same arrivals against a simulated wall clock,
//!   so quiet periods (with their expirations and time-driven re-plans)
//!   actually elapse between bursts — and opts into *real* wall-clock
//!   pacing with [`LiveSource::with_wall_clock`] for true real-time runs.
//!   [`NetSource`] is the push-fed variant: a connection handler feeds
//!   events across threads through a [`NetSourceHandle`], which is how the
//!   `datawa-net` TCP front-end (wire format in the workspace-root
//!   `PROTOCOL.md`) runs one `DispatchService` per tenant connection.
//! * **[`DispatchService`]** — the pump: source → session → sink, with
//!   bounded-queue backpressure (admission pauses and the session drains
//!   when planning lags a burst by more than
//!   [`ServiceConfig::max_pending`] events) and mid-stream
//!   [`DispatchService::stats`] / [`DispatchService::snapshot`] inspection,
//!   including the live forecast-provider counters
//!   ([`ServiceStats::forecast`]) when the session runs over an online
//!   demand forecaster instead of a fixed
//!   [`StaticForecast`](datawa_assign::StaticForecast) oracle.
//!
//! Decisions leave through any [`DecisionSink`](datawa_stream::DecisionSink)
//! — use a [`ChannelSink`](datawa_stream::ChannelSink) to stream them to a
//! consumer thread (see the `service_live` binary), or a
//! [`CollectingSink`](datawa_stream::CollectingSink) to gather them in
//! memory:
//!
//! ```
//! use datawa_assign::{AdaptiveRunner, AssignConfig, PolicyKind, StaticForecast};
//! use datawa_service::{DispatchService, LiveSource, ServiceConfig};
//! use datawa_stream::{CollectingSink, ScenarioGenerator, ScenarioSpec, UniformBaseline};
//!
//! let workload = UniformBaseline::new(ScenarioSpec::small().with_tasks(80).with_workers(8))
//!     .generate();
//! let runner = AdaptiveRunner::new(AssignConfig::default(), PolicyKind::Dta);
//!
//! let mut forecast = StaticForecast::default(); // DTA ignores predictions
//! let service = DispatchService::open(
//!     &runner,
//!     &mut forecast,
//!     LiveSource::new(&workload, 30.0), // 30 simulated seconds per quiet poll
//!     CollectingSink::new(),
//!     ServiceConfig::default(),
//! );
//! let (outcome, stats, sink) = service.run();
//!
//! assert!(stats.source_exhausted);
//! assert_eq!(sink.dispatches(), outcome.run.assigned_tasks);
//! assert!(outcome.run.assigned_tasks > 0);
//! ```
//!
//! Replaying through [`WorkloadSource`] is bit-identical to the batch
//! [`run_workload`](datawa_stream::run_workload) driver (pinned by this
//! crate's tests and the workspace `session_equivalence` suite), so the
//! service is a strict generalisation of the replay path, not a fork of it.
//!
//! ## Observability
//!
//! The service records into a `datawa-obs`
//! [`MetricsRegistry`](datawa_obs::MetricsRegistry): admissions
//! (`service.ingested`), quiet-period waits (`service.waits`), cumulative
//! backpressure stalls (`service.backpressure_stalls`), the admission
//! backlog gauge with its high-water mark (`service.backlog`) and a pump
//! latency histogram (`service.pump_seconds`). When the runner carries an
//! attached registry (`DATAWA_OBS=on`, or
//! [`AdaptiveRunner::with_metrics`](datawa_assign::AdaptiveRunner::with_metrics)),
//! the service joins it, so [`DispatchService::obs_snapshot`] returns one
//! combined assign + stream + service snapshot; otherwise the service
//! carries a private always-attached registry, which is how
//! [`DispatchService::stats`] can source [`ServiceStats::backpressure_flushes`]
//! and [`ServiceStats::backlog_high_water`] from registry counters
//! unconditionally — they report cumulative truth over the whole run, not
//! the instant of the call.
//!
//! [`Session`]: datawa_stream::Session
//! [`Decision`]: datawa_stream::Decision

pub mod dispatch;
pub mod source;

pub use dispatch::{DispatchService, PumpStatus, ServiceConfig, ServiceStats};
pub use source::{
    IngestSource, LiveSource, NetSource, NetSourceHandle, SharedSource, SourceClosed, SourcePoll,
    WorkloadSource,
};
