//! Demand Dependency Learning Module (§III-B, Eq. 4–6).
//!
//! Two neural networks embed the current snapshot `C^t` (one occurrence
//! vector per cell) into source and target node embeddings `M1`, `M2`; their
//! symmetric product, squashed by `tanh` and normalised row-wise by `softmax`,
//! is the dynamic adjacency matrix `A^t` describing how demand in one region
//! influences demand in another at time `t`.

use datawa_tensor::layers::Dense;
use datawa_tensor::{Matrix, Var};
use rand::rngs::StdRng;

/// Learns the dynamic, time-dependent adjacency matrix of the grid graph.
#[derive(Clone)]
pub struct DependencyLearner {
    f1: Dense,
    f2: Dense,
    embedding_dim: usize,
}

impl DependencyLearner {
    /// Creates the module. `feature_dim` is `k` (the width of one occurrence
    /// vector); `embedding_dim` is the node-embedding width.
    pub fn new(feature_dim: usize, embedding_dim: usize, rng: &mut StdRng) -> DependencyLearner {
        DependencyLearner {
            f1: Dense::new(feature_dim, embedding_dim, rng),
            f2: Dense::new(feature_dim, embedding_dim, rng),
            embedding_dim,
        }
    }

    /// Embedding width.
    pub fn embedding_dim(&self) -> usize {
        self.embedding_dim
    }

    /// Computes the adjacency matrix `A^t` from a snapshot node (shape
    /// `(M, k)`), per Eq. 4–6:
    ///
    /// ```text
    /// M1 = F_θ1(C^t)      M2 = F_θ2(C^t)
    /// A^t = softmax(tanh(M1·M2ᵀ + M2·M1ᵀ))
    /// ```
    ///
    /// The result is row-stochastic (each row sums to 1).
    pub fn adjacency(&self, snapshot: &Var) -> Var {
        let m1 = self.f1.forward(snapshot);
        let m2 = self.f2.forward(snapshot);
        let cross = m1.matmul(&m2.transpose()).add(&m2.matmul(&m1.transpose()));
        cross.tanh().softmax_rows()
    }

    /// Convenience wrapper that takes a raw snapshot matrix.
    pub fn adjacency_from_matrix(&self, snapshot: &Matrix) -> Var {
        self.adjacency(&Var::constant(snapshot.clone()))
    }

    /// Trainable parameters.
    pub fn parameters(&self) -> Vec<Var> {
        let mut p = self.f1.parameters();
        p.extend(self.f2.parameters());
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn adjacency_is_square_and_row_stochastic() {
        let mut rng = StdRng::seed_from_u64(0);
        let dep = DependencyLearner::new(3, 4, &mut rng);
        let snapshot = Matrix::from_rows(&[
            &[1.0, 0.0, 1.0],
            &[0.0, 1.0, 0.0],
            &[1.0, 1.0, 0.0],
            &[0.0, 0.0, 0.0],
            &[1.0, 1.0, 1.0],
        ]);
        let a = dep.adjacency_from_matrix(&snapshot).value();
        assert_eq!(a.shape(), (5, 5));
        for r in 0..5 {
            let sum: f64 = a.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "row {r} sums to {sum}");
            assert!(a.row(r).iter().all(|&v| v >= 0.0));
        }
        assert_eq!(dep.embedding_dim(), 4);
        assert_eq!(dep.parameters().len(), 4);
    }

    #[test]
    fn adjacency_depends_on_the_snapshot() {
        let mut rng = StdRng::seed_from_u64(1);
        let dep = DependencyLearner::new(2, 3, &mut rng);
        let a = dep
            .adjacency_from_matrix(&Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]))
            .value();
        let b = dep
            .adjacency_from_matrix(&Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]))
            .value();
        // The dynamic adjacency must react to the demand snapshot.
        assert_ne!(a, b);
    }

    #[test]
    fn adjacency_gradients_reach_the_embedding_networks() {
        let mut rng = StdRng::seed_from_u64(2);
        let dep = DependencyLearner::new(2, 3, &mut rng);
        let snapshot = Var::constant(Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]));
        let loss = dep.adjacency(&snapshot).sum();
        loss.backward();
        // softmax rows always sum to 1 so the sum's gradient w.r.t. weights is
        // ~0; use a weighted sum instead to check gradient flow.
        let weights = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 0.0]]);
        for p in dep.parameters() {
            p.zero_grad();
        }
        let loss = dep
            .adjacency(&Var::constant(Matrix::from_rows(&[
                &[1.0, 0.0],
                &[0.0, 1.0],
            ])))
            .hadamard(&Var::constant(weights))
            .sum();
        loss.backward();
        let total_grad: f64 = dep.parameters().iter().map(|p| p.grad().max_abs()).sum();
        assert!(
            total_grad > 0.0,
            "no gradient reached the dependency learner"
        );
    }
}
