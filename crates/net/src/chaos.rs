//! Deterministic fault injection for the wire transport.
//!
//! [`ChaosProxy`] sits between a client and a [`NetServer`](crate::NetServer)
//! as a frame-aware TCP proxy: it parses the client→server byte stream at
//! frame boundaries and applies a scripted [`Fault`] per proxied connection —
//! connection resets, truncated frames, duplicated frames, stalls — while
//! copying the server→client direction verbatim. Faults trigger on *frame
//! counts*, never on timing, so a given [`ChaosPlan`] replays the same
//! byte-level failure on every run; combined with the seeded plan generator
//! ([`ChaosPlan::seeded`]) and the server's deterministic journal recovery,
//! an entire chaos scenario is reproducible from a single `u64`.
//!
//! Pump kills — the fourth fault class — are injected server-side via
//! [`NetConfig::pump_kills`](crate::NetConfig::pump_kills), since they
//! target the dispatch thread rather than the transport.

use crate::wire::MAX_FRAME_LEN;
use rand::prelude::{Rng, SeedableRng, StdRng};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// One scripted transport fault, applied to the client→server direction of
/// a single proxied connection. Frame indices count client frames from zero
/// **including the `Hello`**.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fault {
    /// Forward `after_frames` frames, then sever both directions — the
    /// client sees a connection reset; the server sees an unclean end.
    /// Everything past the cut is tail loss, exactly like a crashed peer.
    Reset {
        /// Client frames forwarded before the cut.
        after_frames: u64,
    },
    /// Forward frame `frame` only up to `keep_bytes` of its encoding
    /// (length prefix included), then sever — the server reads a torn
    /// frame, the classic partial-write crash.
    Truncate {
        /// Zero-based index of the frame to tear.
        frame: u64,
        /// Bytes of the frame's encoding that still arrive.
        keep_bytes: usize,
    },
    /// Forward frame `frame` twice. Safe only for frames whose replay is
    /// idempotent at the server (an `AdvanceTo` to the same time, a
    /// `Resume` ping); duplicating an event frame corrupts the stream by
    /// design — chaos tests use this to check liveness, not parity.
    Duplicate {
        /// Zero-based index of the frame to double.
        frame: u64,
    },
    /// Hold frame `frame` for `millis` before forwarding it, unchanged and
    /// in order: pure latency injection.
    Stall {
        /// Zero-based index of the frame to delay.
        frame: u64,
        /// Delay in milliseconds.
        millis: u64,
    },
}

/// A scripted schedule of faults: entry `i` applies to the `i`-th accepted
/// connection; connections past the end are proxied transparently — which
/// is what lets a retrying client finally succeed.
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    /// Per-connection faults, in accept order. `None` = transparent.
    pub conns: Vec<Option<Fault>>,
}

impl ChaosPlan {
    /// A plan that proxies every connection transparently.
    pub fn transparent() -> ChaosPlan {
        ChaosPlan::default()
    }

    /// A seeded random plan: `faulty_conns` connections each get one fault
    /// drawn deterministically from the full vocabulary, with trigger
    /// frames in `[1, frame_span)` (index 0 — the `Hello` — is spared so a
    /// handshake always completes and the fault lands mid-session).
    /// Connections after the faulty prefix are transparent.
    pub fn seeded(seed: u64, faulty_conns: usize, frame_span: u64) -> ChaosPlan {
        let mut rng = StdRng::seed_from_u64(seed);
        let span = frame_span.max(2);
        let conns = (0..faulty_conns)
            .map(|_| {
                let frame = rng.gen_range(1..span);
                Some(match rng.gen_range(0..3u32) {
                    0 => Fault::Reset {
                        after_frames: frame,
                    },
                    1 => Fault::Truncate {
                        frame,
                        // At least the length prefix, never the whole frame.
                        keep_bytes: rng.gen_range(1..5usize),
                    },
                    _ => Fault::Stall {
                        frame,
                        millis: rng.gen_range(1..20u64),
                    },
                })
            })
            .collect();
        ChaosPlan { conns }
    }
}

/// A frame-aware TCP proxy applying a [`ChaosPlan`]. Bound to loopback;
/// dropping it (or calling [`shutdown`](ChaosProxy::shutdown)) joins every
/// thread it spawned.
pub struct ChaosProxy {
    addr: SocketAddr,
    upstream: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Arc<Mutex<Vec<Worker>>>,
}

/// One live proxied connection: the thread plus socket handles kept so
/// [`ChaosProxy::shutdown`] can sever a still-copying pair instead of
/// blocking on its join.
struct Worker {
    handle: JoinHandle<()>,
    client: TcpStream,
    server: TcpStream,
}

impl ChaosProxy {
    /// Binds an ephemeral loopback port proxying to `upstream` under `plan`.
    pub fn spawn(upstream: SocketAddr, plan: ChaosPlan) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let workers: Arc<Mutex<Vec<Worker>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let stop = Arc::clone(&stop);
            let workers = Arc::clone(&workers);
            std::thread::spawn(move || {
                let mut conn_index = 0usize;
                for stream in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(client) = stream else { continue };
                    let fault = plan.conns.get(conn_index).copied().flatten();
                    conn_index += 1;
                    let Ok(server) = TcpStream::connect(upstream) else {
                        let _ = client.shutdown(Shutdown::Both);
                        continue;
                    };
                    let (Ok(client_keep), Ok(server_keep)) =
                        (client.try_clone(), server.try_clone())
                    else {
                        sever(&client, &server);
                        continue;
                    };
                    let handle = std::thread::spawn(move || proxy_conn(client, server, fault));
                    workers.lock().expect("proxy worker list").push(Worker {
                        handle,
                        client: client_keep,
                        server: server_keep,
                    });
                }
            })
        };
        Ok(ChaosProxy {
            addr,
            upstream,
            stop,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The loopback address clients should connect to instead of the server.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins every proxy thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr); // unblock accept
        let _ = self.upstream; // upstream lives as long as the proxy
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let workers = std::mem::take(&mut *self.workers.lock().expect("proxy worker list"));
        for worker in &workers {
            // Unblock copiers still mid-read so every join below terminates.
            sever(&worker.client, &worker.server);
        }
        for worker in workers {
            let _ = worker.handle.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Severs both directions of both sockets.
fn sever(a: &TcpStream, b: &TcpStream) {
    let _ = a.shutdown(Shutdown::Both);
    let _ = b.shutdown(Shutdown::Both);
}

/// Runs one proxied connection to completion: the server→client direction
/// is a verbatim copy on a helper thread; the client→server direction is
/// re-framed here so faults land on exact frame boundaries.
fn proxy_conn(client: TcpStream, server: TcpStream, fault: Option<Fault>) {
    let downstream = {
        let (Ok(mut server_read), Ok(mut client_write)) = (server.try_clone(), client.try_clone())
        else {
            sever(&client, &server);
            return;
        };
        std::thread::spawn(move || {
            let mut buf = [0u8; 4096];
            while let Ok(n) = server_read.read(&mut buf) {
                if n == 0 || client_write.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            // Propagate the server-side close so a client blocked on a read
            // observes EOF rather than a stall.
            let _ = client_write.shutdown(Shutdown::Both);
        })
    };

    let mut client_read = client.try_clone().ok();
    let mut server_write = server.try_clone().ok();
    if let (Some(client_read), Some(server_write)) = (&mut client_read, &mut server_write) {
        forward_frames(client_read, server_write, fault, &client, &server);
    } else {
        sever(&client, &server);
    }
    let _ = downstream.join();
}

/// Reads client frames one at a time and forwards them, applying `fault`.
fn forward_frames(
    from: &mut TcpStream,
    to: &mut TcpStream,
    fault: Option<Fault>,
    client: &TcpStream,
    server: &TcpStream,
) {
    let mut index: u64 = 0;
    loop {
        if let Some(Fault::Reset { after_frames }) = fault {
            if index == after_frames {
                sever(client, server);
                return;
            }
        }
        let mut prefix = [0u8; 4];
        if from.read_exact(&mut prefix).is_err() {
            // Client went away: half-close towards the server so its reader
            // sees a normal end of stream.
            let _ = to.shutdown(Shutdown::Write);
            return;
        }
        let len = u32::from_le_bytes(prefix) as usize;
        if len == 0 || len > MAX_FRAME_LEN {
            // Hostile length: forward the prefix as-is and let the server's
            // codec answer with its typed error.
            if to.write_all(&prefix).is_err() {
                sever(client, server);
            }
            return;
        }
        let mut frame = vec![0u8; 4 + len];
        frame[..4].copy_from_slice(&prefix);
        if from.read_exact(&mut frame[4..]).is_err() {
            let _ = to.shutdown(Shutdown::Write);
            return;
        }
        match fault {
            Some(Fault::Truncate {
                frame: at,
                keep_bytes,
            }) if index == at => {
                let keep = keep_bytes.min(frame.len());
                let _ = to.write_all(&frame[..keep]);
                sever(client, server);
                return;
            }
            Some(Fault::Duplicate { frame: at }) if index == at => {
                if to.write_all(&frame).is_err() || to.write_all(&frame).is_err() {
                    sever(client, server);
                    return;
                }
            }
            Some(Fault::Stall { frame: at, millis }) if index == at => {
                // datawa-lint: allow(blocking-sleep) -- latency injection is this proxy's entire purpose
                std::thread::sleep(std::time::Duration::from_millis(millis));
                if to.write_all(&frame).is_err() {
                    sever(client, server);
                    return;
                }
            }
            _ => {
                if to.write_all(&frame).is_err() {
                    sever(client, server);
                    return;
                }
            }
        }
        index += 1;
    }
}
