//! # datawa-net
//!
//! The TCP transport front-end over the `datawa-service` dispatch stack: a
//! hand-rolled length-prefixed binary wire protocol (normatively described
//! in `PROTOCOL.md` at the workspace root), a threaded acceptor that
//! multiplexes many concurrent client connections onto per-tenant dispatch
//! sessions, and admission control that degrades gracefully — retry-after
//! frames and stalest-tenant shedding — instead of dropping events
//! silently.
//!
//! ## Shape
//!
//! * [`wire`] — the [`Frame`] vocabulary and its codec: the engine's event
//!   types (task arrival/expiration, worker online/offline, replan,
//!   advance, close) plus tenant hello/auth, decision, retry-after, error
//!   and closed frames. Total decoding: hostile bytes become typed
//!   [`WireError`]s, never panics.
//! * [`server`] — [`NetServer`]: the acceptor, the per-connection reader
//!   threads, the per-tenant pump threads (each one a
//!   [`DispatchService`](datawa_service::DispatchService) fed by a
//!   [`NetSource`](datawa_service::NetSource)), and the three admission
//!   layers ([connection cap, global shedding, per-tenant
//!   quota](NetConfig)).
//! * [`client`] — [`NetClient`]: a loopback client with a background frame
//!   collector, which is how CI exercises the full stack over
//!   `127.0.0.1` without real network access; and [`ResilientClient`], the
//!   retrying variant that owns its command log and survives transport
//!   faults via capped jittered backoff plus reconnect-with-resume.
//! * [`chaos`] — deterministic fault injection: [`ChaosProxy`], a
//!   frame-aware TCP proxy that executes a seeded [`ChaosPlan`] of
//!   connection resets, torn frames, duplicates and stalls, replayable
//!   from a single seed (`DATAWA_CHAOS_SEED` drives the `chaos_smoke` CI
//!   harness).
//!
//! ## Fault tolerance
//!
//! Admitted commands are journaled per tenant before they reach the
//! session; pump threads run supervised (a panicking pump is caught,
//! rebuilt by journal replay, and resumed while clients see typed
//! `Recovering` retry-afters), and reconnecting clients resume from a
//! count-based watermark (`Resume`/`ResumeAck`) so re-ingest is
//! idempotent. `PROTOCOL.md` at the workspace root specifies the frames
//! and semantics; `tests/chaos_recovery.rs` pins crash-recovery output
//! bitwise-equal to the uninterrupted run for every policy × generator.
//!
//! ## Observability
//!
//! Every server carries an attached
//! [`MetricsRegistry`](datawa_obs::MetricsRegistry)
//! ([`NetServer::metrics`]): `net.connections` (gauge), `net.frames_in` /
//! `net.frames_out`, `net.rejected_admission`, the `net.ingest_seconds`
//! latency histogram, and per-tenant `net.tenant.<name>.frames_in` /
//! `.decisions` / `.rejected` counters — alongside every tenant session's
//! engine and planner metrics, since the sessions record into the same
//! registry. Recovery is observable too: `net.pump_recoveries` and
//! per-tenant `net.tenant.<name>.recoveries` count supervised restarts,
//! and the `net.recovery_seconds` histogram times each journal replay.
//!
//! ## Equivalence
//!
//! The transport adds no behaviour: a workload streamed through a loopback
//! connection produces decisions bitwise-identical to the same workload
//! driven through `Session::ingest` directly (pinned per policy and
//! generator by `tests/net_equivalence.rs`).

pub mod chaos;
pub mod client;
pub mod server;
pub mod wire;

pub use chaos::{ChaosPlan, ChaosProxy, Fault};
pub use client::{
    ClientError, ClientOutcome, ClosedSummary, NetClient, ResilientClient, RetryOutcome,
    RetryPolicy,
};
pub use server::{NetConfig, NetServer};
pub use wire::{ErrorCode, Frame, RetryReason, WireError, MAX_FRAME_LEN, PROTOCOL_VERSION};
